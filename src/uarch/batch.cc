#include "uarch/batch.hh"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/env.hh"
#include "common/logging.hh"
#include "uarch/engine.hh"

// The vectorized kernel is x86-only by construction (AVX-512); the
// scalar tile kernel below is the portable fallback and the identity
// reference, selected at runtime by CPUID + the 32-bit stamp proof.
#if defined(__x86_64__) && defined(__GNUC__)
#define CISA_BATCH_SIMD_KERNEL 1
#include <immintrin.h>
#else
#define CISA_BATCH_SIMD_KERNEL 0
#endif

namespace cisa
{

namespace
{

using namespace engine_detail;

/**
 * One step's inputs, decoded once per walk instead of once per cell:
 * the packed-trace fields plus the structural-stream events with
 * their cursor side-arrays already consumed.
 */
struct SharedStep
{
    uint16_t bits = 0;
    uint8_t len = 0;
    uint8_t uops = 1;
    const PackedUop *xu = nullptr;
    int nxu = 0;
    int memSlots = 0;
    int flat = -1;        ///< I-side access latency; -1 if streaming
    bool evUcHit = false; ///< raw uop-cache hit event
    uint16_t fwdMask = 0; ///< covering store-buffer slots (0: none)
    uint64_t loadLat = 0; ///< hierarchy load latency beyond 1 cycle
    bool mispredict = false;
    bool btbMiss = false;
};

/**
 * Structure-of-arrays cycle state, one slot per cell, ordered
 * out-of-order cells first so each kernel instantiation runs over a
 * contiguous range. Consecutive cells' entries are adjacent, so the
 * inner loop streams through every array.
 */
struct CellState
{
    size_t n = 0;

    // Per-cell constants.
    std::vector<int> width, decodeBw;
    std::vector<uint8_t> ucOn, fusOn;

    // Front-end / dispatch / commit cycle state.
    std::vector<uint64_t> fetchCycle, redirect, dispatchCycle,
        lastIssue, lastCommit, cycles, warmCycles;
    std::vector<int> fetchMacroBudget, fetchByteBudget,
        fetchUopBudget, dispatchBudget, commitBudget;

    // ROB/IQ/LSQ rings, flattened into one slab (engine_detail::Ring
    // is deliberately non-movable, so per-cell Ring storage is out).
    std::vector<uint64_t> ring;
    std::vector<uint32_t> robOff, iqOff, lsqOff;
    std::vector<uint32_t> robN, iqN, lsqN;
    std::vector<uint32_t> robHead, iqHead, lsqHead;

    // Functional-unit pools (inline arrays, reused from the engine).
    std::vector<FuPools> fu;

    // Scoreboards: register ready times, store-buffer data stamps,
    // per-op uop completion slots (last slot pinned zero — the
    // chain-less sentinel).
    std::vector<uint64_t> regReady; ///< n * kEngineRegSlots
    std::vector<uint64_t> sbReady;  ///< n * kSbSize
    std::vector<uint64_t> uopEnd;   ///< n * (kMaxUopsPerOp + 1)
};

/**
 * Per-step stats accounting for one (OoO, uop-cache, fusion) combo.
 * Every PerfStats counter except `cycles` (and the mem-hierarchy
 * fields, which snapshotMem overwrites from the stream) depends only
 * on the shared step and these three booleans — so one update per
 * combo replaces one per cell. Mirrors the increments of
 * Engine::step exactly.
 */
void
statsStep(PerfStats &st, bool ooo, bool uc, bool fus,
          const SharedStep &s)
{
    if (s.flat >= 0) {
        st.l1iAccesses++;
        if (s.flat > 1)
            st.l1iMisses++;
    }
    bool uc_hit = false;
    if (uc) {
        st.uopCacheLookups++;
        uc_hit = s.evUcHit;
        if (uc_hit)
            st.uopCacheHits++;
    }
    bool fused_branch = fus && (s.bits & kOpFusableBranch);
    if (fused_branch)
        st.fusedMacroOps++;
    int uops = s.uops;
    int slot_uops = fused_branch ? 0 : uops;
    int window_slots = slot_uops;
    if (fus && (s.bits & kOpMicroFusable)) {
        window_slots = 1;
        st.fusedMicroOps++;
    }
    st.macroOps++;
    st.uops += uint64_t(uops);
    st.fetchBytes += s.len;
    if (!uc_hit) {
        st.ildInstrs++;
        st.decodedUops += uint64_t(uops);
        if (uops > 1)
            st.msromUops += uint64_t(uops);
    }
    if (s.bits & kOpPredicated) {
        if (s.bits & kOpPredFalse)
            st.predFalseUops += uint64_t(uops);
    }
    if (ooo) {
        st.renamedUops += uint64_t(slot_uops);
        st.iqWrites += uint64_t(window_slots);
    }
    st.robWrites += uint64_t(window_slots);
    if (s.bits & kOpReadsMem) {
        if (s.fwdMask)
            st.sbForwards++;
        st.lsqOps++;
    }
    if (s.bits & kOpWritesMem)
        st.lsqOps++;
    if (s.bits & kOpBranch) {
        if (s.bits & kOpCondBranch) {
            st.bpLookups++;
            if (s.mispredict)
                st.bpMispredicts++;
        }
        if (!s.mispredict && (s.bits & kOpTaken) && s.btbMiss)
            st.btbMisses++;
    }
}

/** The per-uop counters, identical for every cell of the walk. */
struct UopTally
{
    uint64_t issuedUops = 0;
    uint64_t regReads = 0;
    uint64_t regWrites = 0;
    uint64_t fpRegOps = 0;
    uint64_t aluOps[size_t(MicroClass::NumClasses)] = {};
};

void
addTally(PerfStats &st, const UopTally &t)
{
    st.issuedUops += t.issuedUops;
    st.regReads += t.regReads;
    st.regWrites += t.regWrites;
    st.fpRegOps += t.fpRegOps;
    for (size_t c = 0; c < size_t(MicroClass::NumClasses); c++)
        st.aluOps[c] += t.aluOps[c];
}

void
setMem(PerfStats &st, const MemSnap &m)
{
    st.l1iAccesses = m.l1iAccesses;
    st.l1iMisses = m.l1iMisses;
    st.l1dAccesses = m.l1dAccesses;
    st.l1dMisses = m.l1dMisses;
    st.l2Accesses = m.l2Accesses;
    st.l2Misses = m.l2Misses;
    st.memAccesses = m.memAccesses;
}

/**
 * The walk-level (cell-independent) accounting: one stats lane per
 * present (OoO, uop-cache, fusion) combo plus the per-uop tally,
 * snapshotted at the warm-up crossing.
 */
struct WalkStats
{
    PerfStats comboSt[8];
    PerfStats comboWarm[8];
    uint8_t comboKeys[8];
    int nCombos = 0;
    UopTally tally, tallyWarm;
};

/**
 * One pass over the packed trace and the structural stream, in tiles
 * of up to kTileSteps decoded steps. Decoding — the packed-trace
 * reads, the stream cursor consumption, the combo stats and uop
 * tally — happens exactly once per step here regardless of how many
 * cells ride the walk; @p runTile is invoked per tile as
 * runTile(tile, len, sb_slot, warm_t) to advance every cell's cycle
 * state through it (warm_t: tile-local index of the warm-up-crossing
 * step, -1 if not in this tile). Both the scalar and the vector
 * kernels plug in here, so the decode semantics cannot drift apart.
 */
template <typename RunTile>
void
walkTrace(const ReplayTrace &packed, const StructuralStream &stream,
          uint64_t timed_uops, uint64_t warmup_uops, WalkStats &ws,
          RunTile &&runTile)
{
    constexpr size_t kTileSteps = 128;
    std::vector<SharedStep> tile(kTileSteps);
    std::array<uint8_t, kTileSteps> sb_slot{};

    const size_t nsteps = packed.size();
    const uint64_t total_uops = warmup_uops + timed_uops;
    size_t idx = 0;
    size_t step = 0, ifetch_cur = 0, dload_cur = 0, fwd_cur = 0;
    size_t sb_head = 0;
    uint64_t done_uops = 0;
    bool warm_taken = warmup_uops == 0;
    bool first = true;

    while (done_uops < total_uops) {
        size_t len = 0;
        int warm_t = -1;
        while (len < kTileSteps && done_uops < total_uops) {
            SharedStep &s = tile[len];
            s = SharedStep{};
            s.bits = packed.bits[idx];
            if (first) {
                // The live engine has no previous op on step one.
                s.bits &= uint16_t(~kOpFusableBranch);
                first = false;
            }
            s.len = packed.len[idx];
            s.uops = packed.uops[idx];
            uint32_t ub = packed.uopBegin[idx];
            s.xu = packed.xuops.data() + ub;
            s.nxu = int(packed.uopBegin[idx + 1] - ub);
            s.memSlots =
                ((s.bits & kOpReadsMem) ? 1 : 0) +
                ((s.bits & kOpWritesMem) ? 1 : 0) +
                (((s.bits & kOpPredFalse) && (s.bits & kOpHasMem))
                     ? 1
                     : 0);
            uint8_t ev = stream.ev[step++];
            if (ev & kEvIFetch) {
                s.flat =
                    (ev & kEvIFetchMiss)
                        ? 1 + int(stream.ifetchExtra[ifetch_cur++])
                        : 1;
            }
            s.evUcHit = (ev & kEvUcHit) != 0;
            if (ev & kEvFwd)
                s.fwdMask = stream.fwdMask[fwd_cur++];
            if (ev & kEvDLoad)
                s.loadLat = stream.dloadExtra[dload_cur++];
            s.mispredict = (ev & kEvMispredict) != 0;
            s.btbMiss = (ev & kEvBtbMiss) != 0;

            for (int c = 0; c < ws.nCombos; c++) {
                uint8_t key = ws.comboKeys[c];
                statsStep(ws.comboSt[key], (key & 4) != 0,
                          (key & 2) != 0, (key & 1) != 0, s);
            }
            for (int k = 0; k < s.nxu; k++) {
                const PackedUop &u = s.xu[k];
                ws.tally.issuedUops++;
                ws.tally.aluOps[size_t(u.cls)]++;
                ws.tally.regReads +=
                    uint64_t((u.flags >> kUopNsrcShift) & 0x7);
                ws.tally.regWrites +=
                    (u.flags & kUopWritesReg) != 0;
                ws.tally.fpRegOps += (u.flags & kUopFpSimd) != 0;
            }

            sb_slot[len] = uint8_t(sb_head);
            if (s.bits & kOpWritesMem)
                sb_head = sb_head + 1 == kSbSize ? 0 : sb_head + 1;

            done_uops += s.uops;
            idx = idx + 1 == nsteps ? 0 : idx + 1;
            if (!warm_taken && done_uops >= warmup_uops) {
                warm_taken = true;
                std::copy(ws.comboSt, ws.comboSt + 8, ws.comboWarm);
                ws.tallyWarm = ws.tally;
                warm_t = int(len);
            }
            len++;
        }

        runTile(tile.data(), len, sb_slot.data(), warm_t);
    }

    // The stream must have been generated with the same budgets: the
    // walk must consume it exactly (same invariant the per-cell
    // replay asserts).
    panic_if(step != stream.ev.size() ||
                 ifetch_cur != stream.ifetchExtra.size() ||
                 dload_cur != stream.dloadExtra.size() ||
                 fwd_cur != stream.fwdMask.size(),
             "structural stream not fully consumed: budget mismatch");
}

/** Compose one cell's PerfResult exactly as runCore does, from the
 * walk-level stats plus the cell's final and warm cycle counts. */
PerfResult
composeCell(uint8_t key, uint64_t cyc, uint64_t warm_cyc,
            const WalkStats &ws, const StructuralStream &stream,
            uint64_t warmup_uops)
{
    PerfStats fin = ws.comboSt[key];
    addTally(fin, ws.tally);
    fin.cycles = cyc;
    setMem(fin, stream.fin);

    PerfStats warm;
    uint64_t wc = 0;
    if (warmup_uops > 0) {
        warm = ws.comboWarm[key];
        addTally(warm, ws.tallyWarm);
        warm.cycles = warm_cyc;
        setMem(warm, stream.warm);
        wc = warm_cyc;
    }

    PerfResult res;
    res.stats = PerfStats::diff(fin, warm);
    res.stats.cycles = fin.cycles - wc;
    res.cycles = res.stats.cycles;
    res.ipc = res.stats.ipc();
    res.upc = res.stats.upc();
    return res;
}

/**
 * Advance cells [b, e) through a decoded tile of @p L steps, one
 * cell at a time. A transliteration of Engine::step<OoO> with the
 * structural queries replaced by the pre-decoded SharedStep and the
 * stats accounting hoisted out; each numbered stage below
 * corresponds 1:1 to a stage there, in the same order, so the cycle
 * arithmetic stays bit-identical.
 *
 * Time-tiling is what makes the batch pay off: the live engine keeps
 * its whole cycle state in member scalars that stay register- and
 * L1-resident across the walk, so a step-at-a-time lockstep loop
 * (load and store every scalar per cell per step) loses more to
 * memory traffic than shared decode saves. Running one cell across
 * the whole tile instead keeps its scalars in locals — genuinely in
 * registers, since nothing escapes — and its scoreboards hot in L1,
 * while the decode, stream cursors, and stats still happen once per
 * step for the whole group.
 *
 * @p warm_t is the tile-local index of the step on which the walk
 * crosses the warm-up boundary (-1 if not in this tile): each cell
 * snapshots its cycle count right after that step, matching the
 * per-cell engines' warm snapshot point.
 */
template <bool OoO>
void
stepTile(CellState &cs, size_t b, size_t e, const SharedStep *tile,
         size_t L, const uint8_t *sb_slot, int warm_t)
{
    for (size_t i = b; i < e; i++) {
        const int W = cs.width[i];
        const int dbw = cs.decodeBw[i];
        const bool uc_on = cs.ucOn[i] != 0;
        const bool fus_on = cs.fusOn[i] != 0;
        const uint32_t rob_n = cs.robN[i];
        const uint32_t iq_n = cs.iqN[i];
        const uint32_t lsq_n = cs.lsqN[i];
        uint64_t *__restrict rob_ring =
            cs.ring.data() + cs.robOff[i];
        uint64_t *__restrict iq_ring = cs.ring.data() + cs.iqOff[i];
        uint64_t *__restrict lsq_ring =
            cs.ring.data() + cs.lsqOff[i];
        uint64_t *__restrict rr =
            cs.regReady.data() + i * size_t(kEngineRegSlots);
        uint64_t *__restrict ue =
            cs.uopEnd.data() + i * size_t(kMaxUopsPerOp + 1);
        uint64_t *__restrict sb = cs.sbReady.data() + i * kSbSize;
        FuPools &fu = cs.fu[i];

        uint64_t fc = cs.fetchCycle[i];
        uint64_t redirect = cs.redirect[i];
        uint64_t dispatch_cycle = cs.dispatchCycle[i];
        uint64_t last_issue = cs.lastIssue[i];
        uint64_t last_commit = cs.lastCommit[i];
        uint64_t cycles = cs.cycles[i];
        int fmb = cs.fetchMacroBudget[i];
        int fbb = cs.fetchByteBudget[i];
        int fub = cs.fetchUopBudget[i];
        int dbud = cs.dispatchBudget[i];
        int cbud = cs.commitBudget[i];
        uint32_t rh = cs.robHead[i];
        uint32_t ih = cs.iqHead[i];
        uint32_t lh = cs.lsqHead[i];

        for (size_t t = 0; t < L; t++) {
            const SharedStep &s = tile[t];

            // ---- Fetch ----
            if (fc < redirect) {
                fc = redirect;
                // resetFetchBudgets(fetchUopBudget): the uop budget
                // carries over a redirect, the others refill.
                fmb = W;
                fbb = kIldBytesPerCycle;
            }
            if (s.flat > 1)
                fc += uint64_t(s.flat - 1);

            bool uc_hit = uc_on && s.evUcHit;
            int uop_bw = uc_hit ? 6 : dbw;
            bool fused_branch =
                fus_on && (s.bits & kOpFusableBranch);
            int uops = s.uops;
            int slot_uops = fused_branch ? 0 : uops;
            int window_slots =
                (fus_on && (s.bits & kOpMicroFusable)) ? 1
                                                       : slot_uops;

            fmb -= 1;
            fbb -= s.len;
            fub -= slot_uops;
            if (fmb < 0 || fbb < 0 || fub < 0) {
                fc++;
                fmb = W - 1;
                fbb = kIldBytesPerCycle - s.len;
                fub = uop_bw - slot_uops;
            }

            // ---- Dispatch (rename + window allocation) ----
            uint64_t disp =
                std::max(dispatch_cycle, fc + uint64_t(OoO ? 8 : 5));
            if (window_slots > 0) {
                disp = std::max(disp, rob_ring[rh]);
                if (OoO)
                    disp = std::max(disp, iq_ring[ih]);
            }
            if (s.memSlots > 0)
                disp = std::max(disp, lsq_ring[lh]);

            if (disp > dispatch_cycle) {
                dispatch_cycle = disp;
                dbud = W;
            }
            dbud -= std::max(window_slots, fused_branch ? 0 : 1);
            if (dbud < 0) {
                dispatch_cycle++;
                dbud = W - window_slots;
                disp = dispatch_cycle;
            }

            // ---- Execute ----
            uint64_t load_lat = 0;
            uint64_t fwd_ready = 0;
            if (s.bits & kOpReadsMem) {
                if (s.fwdMask) {
                    for (size_t j = 0; j < kSbSize; j++) {
                        if (s.fwdMask & (1u << j))
                            fwd_ready = std::max(fwd_ready, sb[j]);
                    }
                } else {
                    load_lat = s.loadLat;
                }
            }

            uint64_t end = disp + 1;
            for (int k = 0; k < s.nxu; k++) {
                const PackedUop &u = s.xu[k];
                uint64_t lm = (u.flags & kUopLoad) ? ~uint64_t(0)
                                                   : uint64_t(0);
                uint64_t chain_ready = std::max(
                    ue[size_t(u.chain)], fwd_ready & lm);
                uint64_t r01 =
                    std::max(rr[u.srcs[0]], rr[u.srcs[1]]);
                uint64_t r23 =
                    std::max(rr[u.srcs[2]], rr[u.srcs[3]]);
                uint64_t ready =
                    std::max(std::max(disp + 1, chain_ready),
                             std::max(r01, r23));
                if constexpr (!OoO)
                    ready = std::max(ready, last_issue);

                auto &pool = fu.poolFor(u.pool);
                size_t unit = FuPools::earliest(pool);
                uint64_t issue = std::max(ready, pool.t[unit]);
                uint64_t complete = issue + u.lat + (load_lat & lm);
                pool.t[unit] = (u.flags & kUopUnpipelined)
                                   ? complete
                                   : issue + 1;

                rr[u.dst] = complete;
                rr[(u.flags & kUopWritesFlags) ? kFlagsReg
                                               : kDummyWriteReg] =
                    complete;
                last_issue = std::max(last_issue, issue);
                end = complete;
                ue[size_t(k)] = end;
            }

            // The store-buffer write slot is a walk-level value
            // (every cell pushes on exactly the same steps); only
            // the data-ready stamp is per-cell.
            if (s.bits & kOpWritesMem)
                sb[sb_slot[t]] = end;

            // ---- Branch resolution ----
            if (s.bits & kOpBranch) {
                if (s.mispredict)
                    redirect = end + 1;
                else if ((s.bits & kOpTaken) && s.btbMiss)
                    fc += 2;
            }

            // ---- Commit ----
            uint64_t commit = std::max(end + 1, last_commit);
            if (commit > last_commit) {
                last_commit = commit;
                cbud = W;
            }
            cbud -= std::max(1, window_slots);
            if (cbud < 0) {
                last_commit++;
                cbud = W;
                commit = last_commit;
            }

            for (int sl = 0; sl < window_slots; sl++) {
                rob_ring[rh] = commit;
                rh = rh + 1 == rob_n ? 0 : rh + 1;
                if (OoO) {
                    iq_ring[ih] = end;
                    ih = ih + 1 == iq_n ? 0 : ih + 1;
                }
            }
            for (int sl = 0; sl < s.memSlots; sl++) {
                lsq_ring[lh] = commit;
                lh = lh + 1 == lsq_n ? 0 : lh + 1;
            }

            cycles = std::max(cycles, commit);
            if (int(t) == warm_t)
                cs.warmCycles[i] = cycles;
        }

        cs.fetchCycle[i] = fc;
        cs.redirect[i] = redirect;
        cs.dispatchCycle[i] = dispatch_cycle;
        cs.lastIssue[i] = last_issue;
        cs.lastCommit[i] = last_commit;
        cs.cycles[i] = cycles;
        cs.fetchMacroBudget[i] = fmb;
        cs.fetchByteBudget[i] = fbb;
        cs.fetchUopBudget[i] = fub;
        cs.dispatchBudget[i] = dbud;
        cs.commitBudget[i] = cbud;
        cs.robHead[i] = rh;
        cs.iqHead[i] = ih;
        cs.lsqHead[i] = lh;
    }
}

#if CISA_BATCH_SIMD_KERNEL

/** Compiled-in AVX-512 kernel is only entered on CPUs with the
 * subsets it uses (F for the 32-bit lanes and gathers, BW/DQ/VL for
 * the mask plumbing GCC emits around them). */
bool
cpuHasBatchSimd()
{
    static const bool ok = __builtin_cpu_supports("avx512f") &&
                           __builtin_cpu_supports("avx512bw") &&
                           __builtin_cpu_supports("avx512dq") &&
                           __builtin_cpu_supports("avx512vl");
    return ok;
}

/**
 * One 16-lane tile of cells for the vector kernel: the cycle state
 * of stepTile transposed so that each scalar becomes a row of 16
 * 32-bit lanes (one cell per lane) and every scoreboard becomes
 * rows-of-16 indexed by entity. Stamps are 32-bit here — the caller
 * proves they cannot overflow before choosing this path (see the
 * bound in simulateCoreBatch). All lanes of a chunk share the OoO
 * class; lanes >= nReal clone lane 0 (identical config and therefore
 * identical evolution) and their results are discarded, so partial
 * chunks need no masking in the kernel.
 */
struct alignas(64) BatchChunk
{
    size_t beginSlot = 0; ///< first slot (partition order)
    size_t nReal = 0;     ///< live lanes; the rest clone lane 0
    bool ooo = false;
    __mmask16 ucMask = 0;  ///< lanes with a uop cache
    __mmask16 fusMask = 0; ///< lanes with uop fusion
    int fuMaxN[kNumUopPools] = {}; ///< max units over lanes, per pool

    // Per-lane constants.
    alignas(64) int32_t W[16] = {};
    alignas(64) int32_t Wm1[16] = {};
    alignas(64) int32_t dbw[16] = {};
    alignas(64) uint32_t robN[16] = {};
    alignas(64) uint32_t iqN[16] = {};
    alignas(64) uint32_t lsqN[16] = {};
    alignas(64) uint32_t robB[16] = {};
    alignas(64) uint32_t iqB[16] = {};
    alignas(64) uint32_t lsqB[16] = {};

    // Cycle state (kernel keeps these in registers across a tile).
    alignas(64) uint32_t fc[16] = {};
    alignas(64) uint32_t red[16] = {};
    alignas(64) uint32_t dispc[16] = {};
    alignas(64) uint32_t lastIssue[16] = {};
    alignas(64) uint32_t lastCommit[16] = {};
    alignas(64) uint32_t cycles[16] = {};
    alignas(64) uint32_t warmCycles[16] = {};
    alignas(64) int32_t fmb[16] = {};
    alignas(64) int32_t fbb[16] = {};
    alignas(64) int32_t fub[16] = {};
    alignas(64) int32_t dbud[16] = {};
    alignas(64) int32_t cbud[16] = {};
    alignas(64) uint32_t rh[16] = {};
    alignas(64) uint32_t ih[16] = {};
    alignas(64) uint32_t lh[16] = {};

    // Scoreboards, transposed. Units a lane doesn't have hold
    // UINT32_MAX so the strict-less earliest scan (real stamps stay
    // under 2^31) can never pick or update them.
    alignas(64) uint32_t rr[kEngineRegSlots][16] = {};
    alignas(64) uint32_t ue[kMaxUopsPerOp + 1][16] = {};
    alignas(64) uint32_t sbR[kSbSize][16] = {};
    alignas(64) uint32_t fuT[kNumUopPools][FuPools::kMaxUnits][16] =
        {};

    // ROB/IQ/LSQ rings, one flat u32 slab with per-lane regions
    // (disjoint, so gather/scatter indices never collide), accessed
    // as base[lane] + head[lane].
    std::vector<uint32_t> ring;
};

void
initChunk(BatchChunk &c, const CoreConfig *cells,
          const std::vector<size_t> &order, size_t begin,
          size_t n_real, bool ooo)
{
    c.beginSlot = begin;
    c.nReal = n_real;
    c.ooo = ooo;
    uint32_t ring_cur = 0;
    for (size_t l = 0; l < 16; l++) {
        const CoreConfig &cc =
            cells[order[begin + (l < n_real ? l : 0)]];
        const MicroArchConfig &ua = cc.uarch;
        c.W[l] = ua.width;
        c.Wm1[l] = ua.width - 1;
        c.dbw[l] = decodeBandwidthFor(cc);
        if (ua.uopCache)
            c.ucMask = __mmask16(c.ucMask | (1u << l));
        if (ua.uopFusion)
            c.fusMask = __mmask16(c.fusMask | (1u << l));
        FuPools fp(ua);
        for (int p = 0; p < kNumUopPools; p++) {
            int n = fp.pools[p].n;
            c.fuMaxN[p] = std::max(c.fuMaxN[p], n);
            for (int u = 0; u < FuPools::kMaxUnits; u++)
                c.fuT[p][u][l] = u < n ? 0 : UINT32_MAX;
        }
        c.robB[l] = ring_cur;
        c.robN[l] = uint32_t(ua.robSize);
        ring_cur += uint32_t(ua.robSize);
        c.iqB[l] = ring_cur;
        c.iqN[l] = uint32_t(ua.iqSize);
        ring_cur += uint32_t(ua.iqSize);
        c.lsqB[l] = ring_cur;
        c.lsqN[l] = uint32_t(ua.lsqSize);
        ring_cur += uint32_t(ua.lsqSize);
        c.fc[l] = 1;
        c.dispc[l] = 1;
        c.fmb[l] = ua.width;
        c.fbb[l] = kIldBytesPerCycle;
        c.fub[l] = ua.width;
        c.dbud[l] = ua.width;
        c.cbud[l] = ua.width;
    }
    c.ring.assign(ring_cur, 0);
}

#pragma GCC push_options
#pragma GCC target("avx512f,avx512bw,avx512dq,avx512vl")
// GCC 12 flags the undefined pass-through operands inside the
// maskz/mask intrinsic wrappers themselves (a known false positive);
// every source operand in this kernel is initialized.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

/**
 * The vector kernel: stepTile with the per-cell loop turned into
 * 32-bit SIMD lanes — every line below maps 1:1 onto a line of
 * stepTile, so the cycle arithmetic is the same arithmetic, just 16
 * cells at a time. Divergent control flow (uop-cache hits, fusion,
 * budget overflows, dispatch stalls) becomes mask registers and
 * blends; step-shared properties (uop list, mem slots, stream
 * events) stay scalar branches exactly as in the scalar kernel. The
 * scoreboards are row-transposed aligned loads/stores; only the ring
 * windows need gather/scatter, with per-lane disjoint regions.
 */
template <bool OoO>
void
stepTileSimd(BatchChunk &c, const SharedStep *tile, size_t L,
             const uint8_t *sb_slot, int warm_t)
{
    const __m512i vzero = _mm512_setzero_si512();
    const __m512i v1 = _mm512_set1_epi32(1);
    const __m512i v6 = _mm512_set1_epi32(6);
    const __m512i vIld = _mm512_set1_epi32(kIldBytesPerCycle);
    const __m512i vDispLat = _mm512_set1_epi32(OoO ? 8 : 5);
    const __m512i vW = _mm512_load_si512(c.W);
    const __m512i vWm1 = _mm512_load_si512(c.Wm1);
    const __m512i vDbw = _mm512_load_si512(c.dbw);
    const __m512i vRobN = _mm512_load_si512(c.robN);
    const __m512i vIqN = _mm512_load_si512(c.iqN);
    const __m512i vLsqN = _mm512_load_si512(c.lsqN);
    const __m512i vRobB = _mm512_load_si512(c.robB);
    const __m512i vIqB = _mm512_load_si512(c.iqB);
    const __m512i vLsqB = _mm512_load_si512(c.lsqB);
    uint32_t *ring = c.ring.data();

    __m512i fc = _mm512_load_si512(c.fc);
    __m512i red = _mm512_load_si512(c.red);
    __m512i dispc = _mm512_load_si512(c.dispc);
    __m512i lastIssue = _mm512_load_si512(c.lastIssue);
    __m512i lastCommit = _mm512_load_si512(c.lastCommit);
    __m512i cycles = _mm512_load_si512(c.cycles);
    __m512i fmb = _mm512_load_si512(c.fmb);
    __m512i fbb = _mm512_load_si512(c.fbb);
    __m512i fub = _mm512_load_si512(c.fub);
    __m512i dbud = _mm512_load_si512(c.dbud);
    __m512i cbud = _mm512_load_si512(c.cbud);
    __m512i rh = _mm512_load_si512(c.rh);
    __m512i ih = _mm512_load_si512(c.ih);
    __m512i lh = _mm512_load_si512(c.lh);

    for (size_t t = 0; t < L; t++) {
        const SharedStep &s = tile[t];

        // ---- Fetch ----
        __mmask16 mRed = _mm512_cmplt_epu32_mask(fc, red);
        fc = _mm512_mask_mov_epi32(fc, mRed, red);
        fmb = _mm512_mask_mov_epi32(fmb, mRed, vW);
        fbb = _mm512_mask_mov_epi32(fbb, mRed, vIld);
        if (s.flat > 1)
            fc = _mm512_add_epi32(fc, _mm512_set1_epi32(s.flat - 1));

        __mmask16 mUcHit = s.evUcHit ? c.ucMask : __mmask16(0);
        __m512i uopBw = _mm512_mask_mov_epi32(vDbw, mUcHit, v6);
        __mmask16 mFB = (s.bits & kOpFusableBranch) ? c.fusMask
                                                    : __mmask16(0);
        __mmask16 mMF = (s.bits & kOpMicroFusable) ? c.fusMask
                                                   : __mmask16(0);
        __m512i vUops = _mm512_set1_epi32(s.uops);
        __m512i slotUops =
            _mm512_maskz_mov_epi32(__mmask16(~mFB), vUops);
        __m512i winSlots = _mm512_mask_mov_epi32(slotUops, mMF, v1);

        fmb = _mm512_sub_epi32(fmb, v1);
        fbb = _mm512_sub_epi32(fbb, _mm512_set1_epi32(s.len));
        fub = _mm512_sub_epi32(fub, slotUops);
        __mmask16 mOver =
            __mmask16(_mm512_cmplt_epi32_mask(fmb, vzero) |
                      _mm512_cmplt_epi32_mask(fbb, vzero) |
                      _mm512_cmplt_epi32_mask(fub, vzero));
        fc = _mm512_mask_add_epi32(fc, mOver, fc, v1);
        fmb = _mm512_mask_mov_epi32(fmb, mOver, vWm1);
        fbb = _mm512_mask_mov_epi32(
            fbb, mOver,
            _mm512_set1_epi32(kIldBytesPerCycle - int(s.len)));
        fub = _mm512_mask_mov_epi32(
            fub, mOver, _mm512_sub_epi32(uopBw, slotUops));

        // ---- Dispatch (rename + window allocation) ----
        __m512i disp = _mm512_max_epu32(
            dispc, _mm512_add_epi32(fc, vDispLat));
        __mmask16 mWS = _mm512_cmpgt_epi32_mask(winSlots, vzero);
        disp = _mm512_max_epu32(
            disp, _mm512_mask_i32gather_epi32(
                      vzero, mWS, _mm512_add_epi32(vRobB, rh), ring,
                      4));
        if constexpr (OoO) {
            disp = _mm512_max_epu32(
                disp, _mm512_mask_i32gather_epi32(
                          vzero, mWS, _mm512_add_epi32(vIqB, ih),
                          ring, 4));
        }
        if (s.memSlots > 0) {
            disp = _mm512_max_epu32(
                disp, _mm512_i32gather_epi32(
                          _mm512_add_epi32(vLsqB, lh), ring, 4));
        }

        __mmask16 mAdv = _mm512_cmpgt_epu32_mask(disp, dispc);
        dispc = _mm512_mask_mov_epi32(dispc, mAdv, disp);
        dbud = _mm512_mask_mov_epi32(dbud, mAdv, vW);
        __m512i dcons = _mm512_max_epi32(
            winSlots, _mm512_maskz_mov_epi32(__mmask16(~mFB), v1));
        dbud = _mm512_sub_epi32(dbud, dcons);
        __mmask16 mDO = _mm512_cmplt_epi32_mask(dbud, vzero);
        dispc = _mm512_mask_add_epi32(dispc, mDO, dispc, v1);
        dbud = _mm512_mask_mov_epi32(
            dbud, mDO, _mm512_sub_epi32(vW, winSlots));
        disp = _mm512_mask_mov_epi32(disp, mDO, dispc);

        // ---- Execute ----
        __m512i loadLat = vzero;
        __m512i fwdReady = vzero;
        bool have_load_lat = false;
        if (s.bits & kOpReadsMem) {
            if (s.fwdMask) {
                for (uint32_t m = s.fwdMask; m; m &= m - 1) {
                    fwdReady = _mm512_max_epu32(
                        fwdReady,
                        _mm512_load_si512(c.sbR[__builtin_ctz(m)]));
                }
            } else if (s.loadLat) {
                loadLat = _mm512_set1_epi32(int(s.loadLat));
                have_load_lat = true;
            }
        }

        __m512i dispP1 = _mm512_add_epi32(disp, v1);
        __m512i end = dispP1;
        for (int k = 0; k < s.nxu; k++) {
            const PackedUop &u = s.xu[k];
            __m512i chain = _mm512_load_si512(c.ue[size_t(u.chain)]);
            if (u.flags & kUopLoad)
                chain = _mm512_max_epu32(chain, fwdReady);
            __m512i r01 = _mm512_max_epu32(
                _mm512_load_si512(c.rr[u.srcs[0]]),
                _mm512_load_si512(c.rr[u.srcs[1]]));
            __m512i r23 = _mm512_max_epu32(
                _mm512_load_si512(c.rr[u.srcs[2]]),
                _mm512_load_si512(c.rr[u.srcs[3]]));
            __m512i ready = _mm512_max_epu32(
                _mm512_max_epu32(dispP1, chain),
                _mm512_max_epu32(r01, r23));
            if constexpr (!OoO)
                ready = _mm512_max_epu32(ready, lastIssue);

            // earliest(): vertical strict-less scan, lowest index
            // wins ties — identical tie-break to the scalar scan.
            const int pn = c.fuMaxN[u.pool];
            uint32_t(*pt)[16] = c.fuT[u.pool];
            __m512i bestT = _mm512_load_si512(pt[0]);
            __m512i bestI = vzero;
            for (int i = 1; i < pn; i++) {
                __m512i ti = _mm512_load_si512(pt[i]);
                __mmask16 lt = _mm512_cmplt_epu32_mask(ti, bestT);
                bestT = _mm512_mask_mov_epi32(bestT, lt, ti);
                bestI = _mm512_mask_mov_epi32(bestI, lt,
                                              _mm512_set1_epi32(i));
            }
            __m512i issue = _mm512_max_epu32(ready, bestT);
            __m512i complete =
                _mm512_add_epi32(issue, _mm512_set1_epi32(u.lat));
            if ((u.flags & kUopLoad) && have_load_lat)
                complete = _mm512_add_epi32(complete, loadLat);
            __m512i newT = (u.flags & kUopUnpipelined)
                               ? complete
                               : _mm512_add_epi32(issue, v1);
            for (int i = 0; i < pn; i++) {
                __mmask16 sel = _mm512_cmpeq_epi32_mask(
                    bestI, _mm512_set1_epi32(i));
                _mm512_mask_store_epi32(pt[i], sel, newT);
            }
            _mm512_store_si512(c.rr[u.dst], complete);
            _mm512_store_si512(
                c.rr[(u.flags & kUopWritesFlags) ? kFlagsReg
                                                 : kDummyWriteReg],
                complete);
            lastIssue = _mm512_max_epu32(lastIssue, issue);
            end = complete;
            _mm512_store_si512(c.ue[size_t(k)], end);
        }

        if (s.bits & kOpWritesMem)
            _mm512_store_si512(c.sbR[sb_slot[t]], end);

        // ---- Branch resolution ----
        if (s.bits & kOpBranch) {
            if (s.mispredict)
                red = _mm512_add_epi32(end, v1);
            else if ((s.bits & kOpTaken) && s.btbMiss)
                fc = _mm512_add_epi32(fc, _mm512_set1_epi32(2));
        }

        // ---- Commit ----
        __m512i commit = _mm512_max_epu32(_mm512_add_epi32(end, v1),
                                          lastCommit);
        __mmask16 mC = _mm512_cmpgt_epu32_mask(commit, lastCommit);
        lastCommit = _mm512_mask_mov_epi32(lastCommit, mC, commit);
        cbud = _mm512_mask_mov_epi32(cbud, mC, vW);
        cbud =
            _mm512_sub_epi32(cbud, _mm512_max_epi32(v1, winSlots));
        __mmask16 mCO = _mm512_cmplt_epi32_mask(cbud, vzero);
        lastCommit =
            _mm512_mask_add_epi32(lastCommit, mCO, lastCommit, v1);
        cbud = _mm512_mask_mov_epi32(cbud, mCO, vW);
        commit = _mm512_mask_mov_epi32(commit, mCO, lastCommit);

        for (int sl = 0;; sl++) {
            __mmask16 mP = _mm512_cmpgt_epi32_mask(
                winSlots, _mm512_set1_epi32(sl));
            if (!mP)
                break;
            _mm512_mask_i32scatter_epi32(
                ring, mP, _mm512_add_epi32(vRobB, rh), commit, 4);
            __m512i inc = _mm512_add_epi32(rh, v1);
            inc = _mm512_maskz_mov_epi32(
                _mm512_cmpneq_epi32_mask(inc, vRobN), inc);
            rh = _mm512_mask_mov_epi32(rh, mP, inc);
            if constexpr (OoO) {
                _mm512_mask_i32scatter_epi32(
                    ring, mP, _mm512_add_epi32(vIqB, ih), end, 4);
                __m512i inc2 = _mm512_add_epi32(ih, v1);
                inc2 = _mm512_maskz_mov_epi32(
                    _mm512_cmpneq_epi32_mask(inc2, vIqN), inc2);
                ih = _mm512_mask_mov_epi32(ih, mP, inc2);
            }
        }
        for (int sl = 0; sl < s.memSlots; sl++) {
            _mm512_i32scatter_epi32(
                ring, _mm512_add_epi32(vLsqB, lh), commit, 4);
            __m512i inc = _mm512_add_epi32(lh, v1);
            lh = _mm512_maskz_mov_epi32(
                _mm512_cmpneq_epi32_mask(inc, vLsqN), inc);
        }

        cycles = _mm512_max_epu32(cycles, commit);
        if (int(t) == warm_t)
            _mm512_store_si512(c.warmCycles, cycles);
    }

    _mm512_store_si512(c.fc, fc);
    _mm512_store_si512(c.red, red);
    _mm512_store_si512(c.dispc, dispc);
    _mm512_store_si512(c.lastIssue, lastIssue);
    _mm512_store_si512(c.lastCommit, lastCommit);
    _mm512_store_si512(c.cycles, cycles);
    _mm512_store_si512(c.fmb, fmb);
    _mm512_store_si512(c.fbb, fbb);
    _mm512_store_si512(c.fub, fub);
    _mm512_store_si512(c.dbud, dbud);
    _mm512_store_si512(c.cbud, cbud);
    _mm512_store_si512(c.rh, rh);
    _mm512_store_si512(c.ih, ih);
    _mm512_store_si512(c.lh, lh);
}

// Instantiate inside the target region: an implicit instantiation at
// a call site outside it would lose the AVX-512 codegen options.
template void stepTileSimd<true>(BatchChunk &, const SharedStep *,
                                 size_t, const uint8_t *, int);
template void stepTileSimd<false>(BatchChunk &, const SharedStep *,
                                  size_t, const uint8_t *, int);

#pragma GCC diagnostic pop
#pragma GCC pop_options

#endif // CISA_BATCH_SIMD_KERNEL

} // namespace

std::vector<PerfResult>
simulateCoreBatch(const CoreConfig *cells, size_t ncells,
                  const ReplayTrace &packed,
                  const StructuralStream &stream,
                  uint64_t timed_uops, uint64_t warmup_uops,
                  const RunEnv &env)
{
    panic_if(ncells == 0, "empty batch");
    panic_if(packed.size() == 0, "empty packed trace");
    panic_if(!packed.complete &&
                 warmup_uops + timed_uops > packed.maxSteps,
             "packed trace built for %llu steps, need up to %llu",
             (unsigned long long)packed.maxSteps,
             (unsigned long long)(warmup_uops + timed_uops));
    for (size_t i = 0; i < ncells; i++) {
        panic_if(stream.key !=
                     structuralFingerprint(cells[i].uarch, env),
                 "batched cell %zu lies outside the stream's "
                 "structural slice", i);
    }

    // Out-of-order cells first: each kernel instantiation then
    // runs over one contiguous range.
    std::vector<size_t> order(ncells);
    std::iota(order.begin(), order.end(), 0);
    auto mid = std::stable_partition(
        order.begin(), order.end(),
        [&](size_t i) { return cells[i].uarch.outOfOrder; });
    const size_t n_ooo = size_t(mid - order.begin());

    std::vector<uint8_t> combo_key(ncells);
    WalkStats ws;
    {
        bool seen[8] = {};
        for (size_t slot = 0; slot < ncells; slot++) {
            const MicroArchConfig &ua = cells[order[slot]].uarch;
            uint8_t key = uint8_t((ua.outOfOrder ? 4 : 0) |
                                  (ua.uopCache ? 2 : 0) |
                                  (ua.uopFusion ? 1 : 0));
            combo_key[slot] = key;
            if (!seen[key]) {
                seen[key] = true;
                ws.comboKeys[ws.nCombos++] = key;
            }
        }
    }

#if CISA_BATCH_SIMD_KERNEL
    // The vector kernel runs on 32-bit stamps, so it is only legal
    // when no stamp can reach 2^31. Every stamp a step produces is
    // bounded by (max stamp before the step) + A, where the
    // per-step advance A covers the worst case of every stage:
    // redirect refill + I-fetch stall + fetch overflow (+2 btb)
    // reach at most maxIfetchExtra + 6 past the old max; dispatch
    // adds a fixed latency (8) + 2 overflow bumps; the uop chain
    // grows by sum(lat) + loads * dload at most (issue never
    // exceeds the running max, each complete adds its latency);
    // commit adds 2. So A <= maxStepLatSum + maxStepLoads *
    // maxDloadExtra + maxIfetchExtra + 32 (generous slack), and
    // with every step consuming at least one uop (ReplayTrace::build
    // panics otherwise), steps <= total uops. Stamps start at 1.
    const uint64_t total = warmup_uops + timed_uops;
    const uint64_t advance =
        uint64_t(packed.maxStepLatSum) +
        uint64_t(packed.maxStepLoads) * stream.maxDloadExtra +
        stream.maxIfetchExtra + 32;
    if (cpuHasBatchSimd() && batchSimdEnabled() &&
        total <= (uint64_t(1) << 31) &&
        advance <= (uint64_t(1) << 20) &&
        1 + total * advance <= (uint64_t(1) << 31)) {
        std::vector<BatchChunk> chunks;
        chunks.resize((n_ooo + 15) / 16 +
                      (ncells - n_ooo + 15) / 16);
        size_t ci = 0;
        for (size_t b = 0; b < n_ooo; b += 16) {
            initChunk(chunks[ci++], cells, order, b,
                      std::min<size_t>(16, n_ooo - b), true);
        }
        for (size_t b = n_ooo; b < ncells; b += 16) {
            initChunk(chunks[ci++], cells, order, b,
                      std::min<size_t>(16, ncells - b), false);
        }

        walkTrace(packed, stream, timed_uops, warmup_uops, ws,
                  [&](const SharedStep *tile, size_t len,
                      const uint8_t *sb, int warm_t) {
                      for (BatchChunk &c : chunks) {
                          if (c.ooo)
                              stepTileSimd<true>(c, tile, len, sb,
                                                 warm_t);
                          else
                              stepTileSimd<false>(c, tile, len, sb,
                                                  warm_t);
                      }
                  });

        std::vector<PerfResult> out(ncells);
        for (const BatchChunk &c : chunks) {
            for (size_t l = 0; l < c.nReal; l++) {
                size_t slot = c.beginSlot + l;
                out[order[slot]] = composeCell(
                    combo_key[slot], c.cycles[l], c.warmCycles[l],
                    ws, stream, warmup_uops);
            }
        }
        return out;
    }
#endif // CISA_BATCH_SIMD_KERNEL

    CellState cs;
    cs.n = ncells;
    cs.width.resize(ncells);
    cs.decodeBw.resize(ncells);
    cs.ucOn.resize(ncells);
    cs.fusOn.resize(ncells);
    cs.fetchCycle.assign(ncells, 1);
    cs.redirect.assign(ncells, 0);
    cs.dispatchCycle.assign(ncells, 1);
    cs.lastIssue.assign(ncells, 0);
    cs.lastCommit.assign(ncells, 0);
    cs.cycles.assign(ncells, 0);
    cs.warmCycles.assign(ncells, 0);
    cs.fetchMacroBudget.resize(ncells);
    cs.fetchByteBudget.assign(ncells, kIldBytesPerCycle);
    cs.fetchUopBudget.resize(ncells);
    cs.dispatchBudget.resize(ncells);
    cs.commitBudget.resize(ncells);
    cs.robOff.resize(ncells);
    cs.iqOff.resize(ncells);
    cs.lsqOff.resize(ncells);
    cs.robN.resize(ncells);
    cs.iqN.resize(ncells);
    cs.lsqN.resize(ncells);
    cs.robHead.assign(ncells, 0);
    cs.iqHead.assign(ncells, 0);
    cs.lsqHead.assign(ncells, 0);
    cs.fu.reserve(ncells);
    cs.regReady.assign(ncells * size_t(kEngineRegSlots), 0);
    cs.sbReady.assign(ncells * kSbSize, 0);
    cs.uopEnd.assign(ncells * size_t(kMaxUopsPerOp + 1), 0);

    size_t ring_total = 0;
    for (size_t slot = 0; slot < ncells; slot++) {
        const MicroArchConfig &ua = cells[order[slot]].uarch;
        cs.width[slot] = ua.width;
        cs.decodeBw[slot] = decodeBandwidthFor(cells[order[slot]]);
        cs.ucOn[slot] = ua.uopCache;
        cs.fusOn[slot] = ua.uopFusion;
        cs.fetchMacroBudget[slot] = ua.width;
        cs.fetchUopBudget[slot] = ua.width;
        cs.dispatchBudget[slot] = ua.width;
        cs.commitBudget[slot] = ua.width;
        cs.fu.emplace_back(ua);
        cs.robOff[slot] = uint32_t(ring_total);
        cs.robN[slot] = uint32_t(ua.robSize);
        ring_total += size_t(ua.robSize);
        cs.iqOff[slot] = uint32_t(ring_total);
        cs.iqN[slot] = uint32_t(ua.iqSize);
        ring_total += size_t(ua.iqSize);
        cs.lsqOff[slot] = uint32_t(ring_total);
        cs.lsqN[slot] = uint32_t(ua.lsqSize);
        ring_total += size_t(ua.lsqSize);
    }
    cs.ring.assign(ring_total, 0);

    walkTrace(packed, stream, timed_uops, warmup_uops, ws,
              [&](const SharedStep *tile, size_t len,
                  const uint8_t *sb, int warm_t) {
                  if (n_ooo > 0)
                      stepTile<true>(cs, 0, n_ooo, tile, len, sb,
                                     warm_t);
                  if (n_ooo < ncells)
                      stepTile<false>(cs, n_ooo, ncells, tile, len,
                                      sb, warm_t);
              });

    // ---- Compose per-cell results exactly as runCore does. ----
    std::vector<PerfResult> out(ncells);
    for (size_t slot = 0; slot < ncells; slot++) {
        out[order[slot]] =
            composeCell(combo_key[slot], cs.cycles[slot],
                        cs.warmCycles[slot], ws, stream,
                        warmup_uops);
    }
    return out;
}

} // namespace cisa
