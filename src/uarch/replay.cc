#include "uarch/replay.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "common/hash.hh"
#include "uarch/engine.hh"

namespace cisa
{

uint16_t
packOpBits(const DynOp &op, bool prev_fusable_cmp)
{
    uint16_t b = 0;
    if (op.predFalse())
        b |= kOpPredFalse;
    if (op.flags & DynPredicated)
        b |= kOpPredicated;
    if (op.readsMem())
        b |= kOpReadsMem;
    if (op.writesMem())
        b |= kOpWritesMem;
    if (op.form != MemForm::None)
        b |= kOpHasMem;
    if (op.isBranch())
        b |= kOpBranch;
    if (op.isBranch() && op.readsFlags)
        b |= kOpCondBranch;
    if (op.taken())
        b |= kOpTaken;
    if (op.flags & DynRet)
        b |= kOpRet;
    if (op.flags & DynCall)
        b |= kOpCall;
    if (prev_fusable_cmp && op.isBranch() && op.readsFlags)
        b |= kOpFusableBranch;
    if (op.form == MemForm::LoadOp && op.uops == 2)
        b |= kOpMicroFusable;
    return b;
}

bool
isFusableCmp(const DynOp &op)
{
    return op.writesFlags && !op.isBranch() && op.uops == 1 &&
           op.form == MemForm::None;
}

int
expandUops(const DynOp &op, PackedUop *out)
{
    // Mirrors the execute stage of the (former) live engine uop by
    // uop: same classes, operand lists, and chain structure. Every
    // uop is born sealed: class-derived fields come from one table
    // hit, operand slots default to the engine's sentinel ids, and
    // the source count lands in the flags byte as sources are
    // filled.
    auto mkSrcs = [&](PackedUop &u, bool addr, bool data) {
        int k = 0;
        if (addr) {
            if (op.base >= 0)
                u.srcs[k++] = op.base;
            if (op.index >= 0)
                u.srcs[k++] = op.index;
        }
        if (data) {
            if (op.src1 >= 0)
                u.srcs[k++] = op.src1;
            if (op.src2 >= 0 && k < 4)
                u.srcs[k++] = op.src2;
            if (op.readsDst && op.dst >= 0 && k < 4)
                u.srcs[k++] = op.dst;
        }
        if (op.pred >= 0 && k < 4)
            u.srcs[k++] = op.pred;
        return k;
    };

    if (op.predFalse()) {
        // Predicated-false: consumes a slot, reads the predicate,
        // writes nothing.
        PackedUop u;
        setUopClass(u, MicroClass::IntAlu);
        if (op.pred >= 0) {
            u.srcs[0] = op.pred;
            setUopNsrc(u, 1);
        }
        out[0] = u;
        return 1;
    }

    int n = 0;
    int uops = op.uops;
    switch (op.form) {
      case MemForm::None: {
        PackedUop u;
        setUopClass(u, op.cls);
        setUopDst(u, op.dst);
        if (op.writesFlags)
            u.flags |= kUopWritesFlags;
        int k = mkSrcs(u, false, true);
        if (op.readsFlags && op.pred < 0 && k < 4)
            u.srcs[k++] = kFlagsReg;
        setUopNsrc(u, k);
        out[n++] = u;
        // Extra uops of a cracked macro (e.g. mulpd) chain on.
        for (int extra = 1; extra < uops; extra++) {
            PackedUop e;
            setUopClass(e, op.cls);
            setUopDst(e, op.dst);
            if (op.dst >= 0) {
                e.srcs[0] = op.dst;
                setUopNsrc(e, 1);
            }
            e.chain = int16_t(n - 1);
            out[n++] = e;
        }
        break;
      }
      case MemForm::Load: {
        PackedUop u;
        setUopClass(u, MicroClass::Load);
        setUopDst(u, op.dst);
        setUopNsrc(u, mkSrcs(u, true, false));
        out[n++] = u;
        break;
      }
      case MemForm::Store: {
        PackedUop u;
        setUopClass(u, MicroClass::Store);
        setUopNsrc(u, mkSrcs(u, true, true));
        out[n++] = u;
        break;
      }
      case MemForm::LoadOp: {
        PackedUop ld;
        setUopClass(ld, MicroClass::Load);
        setUopNsrc(ld, mkSrcs(ld, true, false));
        out[n++] = ld;
        PackedUop alu;
        setUopClass(alu, op.cls);
        setUopDst(alu, op.dst);
        if (op.writesFlags)
            alu.flags |= kUopWritesFlags;
        setUopNsrc(alu, mkSrcs(alu, false, true));
        alu.chain = 0;
        out[n++] = alu;
        for (int extra = 2; extra < uops; extra++) {
            PackedUop e;
            setUopClass(e, op.cls);
            setUopDst(e, op.dst);
            if (op.dst >= 0) {
                e.srcs[0] = op.dst;
                setUopNsrc(e, 1);
            }
            e.chain = int16_t(n - 1);
            out[n++] = e;
        }
        break;
      }
      case MemForm::LoadOpStore: {
        PackedUop ld;
        setUopClass(ld, MicroClass::Load);
        setUopNsrc(ld, mkSrcs(ld, true, false));
        out[n++] = ld;
        PackedUop alu;
        setUopClass(alu, op.cls);
        if (op.writesFlags)
            alu.flags |= kUopWritesFlags;
        setUopNsrc(alu, mkSrcs(alu, false, true));
        alu.chain = 0;
        out[n++] = alu;
        PackedUop agen;
        setUopClass(agen, MicroClass::IntAlu);
        setUopNsrc(agen, mkSrcs(agen, true, false));
        out[n++] = agen;
        PackedUop stu;
        setUopClass(stu, MicroClass::Store);
        stu.chain = 1; // waits on the alu result, not the agen
        out[n++] = stu;
        break;
      }
    }
    panic_if(n == 0 || n > kMaxUopsPerOp,
             "bad uop expansion: %d uops", n);
    return n;
}

ReplayTrace
ReplayTrace::build(const Trace &trace, uint64_t max_steps)
{
    panic_if(trace.ops.empty(), "empty trace");
    const size_t n = trace.ops.size();
    // One step consumes at least one uop, so a budget of max_steps
    // uops can never replay more than max_steps ops; packing beyond
    // that prefix would be wasted work at campaign scale.
    const size_t used =
        size_t(std::min<uint64_t>(uint64_t(n), max_steps));

    ReplayTrace rt;
    rt.complete = used == n;
    rt.maxSteps = max_steps;
    rt.len.resize(used);
    rt.uops.resize(used);
    rt.bits.resize(used);
    rt.lineId.resize(used);
    rt.uopBegin.resize(used + 1);
    rt.xuops.reserve(used * 2);

    PackedUop buf[kMaxUopsPerOp];
    for (size_t i = 0; i < used; i++) {
        const DynOp &op = trace.ops[i];
        panic_if(op.uops == 0, "zero-uop DynOp at %zu", i);
        // The cyclic previous op decides macro-fusability; index 0
        // pairs with the last op of the (wrapped) trace, and the
        // replay driver masks the bit off on the very first step.
        const DynOp &prev = trace.ops[i == 0 ? n - 1 : i - 1];
        rt.len[i] = op.len;
        rt.uops[i] = op.uops;
        rt.bits[i] = packOpBits(op, isFusableCmp(prev));
        rt.lineId[i] = op.pc >> 6;
        rt.uopBegin[i] = uint32_t(rt.xuops.size());
        int k = expandUops(op, buf);
        rt.xuops.insert(rt.xuops.end(), buf, buf + k);
        uint32_t lat_sum = uint32_t(k);
        uint32_t loads = 0;
        for (int j = 0; j < k; j++) {
            lat_sum += buf[j].lat;
            loads += (buf[j].flags & kUopLoad) != 0;
        }
        rt.maxStepLatSum = std::max(rt.maxStepLatSum, lat_sum);
        rt.maxStepLoads = std::max(rt.maxStepLoads, loads);
    }
    rt.uopBegin[used] = uint32_t(rt.xuops.size());
    return rt;
}

uint64_t
cacheSliceFingerprint(const MicroArchConfig &c, const RunEnv &env)
{
    uint64_t h = 0xCAC4E;
    auto mix = [&](uint64_t v) { h = hashCombine(h, v); };
    mix(uint64_t(c.l1iKB));
    mix(uint64_t(c.l1iAssoc));
    mix(uint64_t(c.l1dKB));
    mix(uint64_t(c.l1dAssoc));
    mix(uint64_t(c.l2KB));
    mix(uint64_t(c.l2Assoc));
    mix(std::bit_cast<uint64_t>(env.l2Share));
    mix(std::bit_cast<uint64_t>(env.memContention));
    return h;
}

uint64_t
bpredSliceFingerprint(const MicroArchConfig &c)
{
    return hashCombine(0xB4A9C4, uint64_t(c.bpred));
}

uint64_t
uopCacheSliceFingerprint(const MicroArchConfig &)
{
    // The uop cache has fixed geometry and its hit stream is a pure
    // function of the pc stream; MicroArchConfig::uopCache only
    // gates whether the timing side consumes it.
    return splitmix64(0x50C4E);
}

uint64_t
structuralFingerprint(const MicroArchConfig &c, const RunEnv &env)
{
    uint64_t h = cacheSliceFingerprint(c, env);
    h = hashCombine(h, bpredSliceFingerprint(c));
    h = hashCombine(h, uopCacheSliceFingerprint(c));
    return h;
}

StructuralStream
buildStructuralStream(const CoreConfig &cfg, const RunEnv &env,
                      const Trace &trace, const ReplayTrace &packed,
                      uint64_t timed_uops, uint64_t warmup_uops)
{
    panic_if(trace.ops.empty(), "empty trace");
    const size_t n = trace.ops.size();
    panic_if(packed.size() !=
                 std::min<uint64_t>(uint64_t(n),
                                    packed.maxSteps),
             "packed trace does not match the source trace");
    panic_if(!packed.complete &&
                 warmup_uops + timed_uops > packed.maxSteps,
             "packed trace built for %llu steps, need up to %llu",
             (unsigned long long)packed.maxSteps,
             (unsigned long long)(warmup_uops + timed_uops));

    using namespace engine_detail;
    LiveStructural str(cfg, env);
    StructuralStream out;
    out.key = structuralFingerprint(cfg.uarch, env);
    out.ev.reserve(size_t(
        std::min<uint64_t>(warmup_uops + timed_uops, 1u << 22)));

    // Drive the structural models through the exact query sequence
    // the timing engine issues. Two engine-side behaviours matter:
    //
    //  - Redirect refetch: the engine's `fetchCycle < redirect` test
    //    fires exactly at the first step after a mispredicted
    //    conditional branch (the redirect target end+1 always lies
    //    ahead of the fetch cycle, and fetch catches up immediately),
    //    so a one-step mispredict flag reproduces it.
    //
    //  - The store-buffer ring head advances on every store in both
    //    passes, so slot indices in the recorded match masks line up
    //    with the timing engine's data-ready stamps.
    size_t head = 0;
    bool prev_mispredict = false;
    bool warm_taken = warmup_uops == 0;
    uint64_t done_uops = 0;
    size_t idx = 0;
    while (done_uops < warmup_uops + timed_uops) {
        const DynOp &op = trace.ops[idx];
        const uint16_t bits = packed.bits[idx];
        uint8_t ev = 0;

        if (prev_mispredict) {
            str.redirectFetch();
            prev_mispredict = false;
        }
        int lat = str.fetchAccess(&op, packed.lineId[idx]);
        if (lat >= 0) {
            ev |= kEvIFetch;
            if (lat > 1) {
                ev |= kEvIFetchMiss;
                out.ifetchExtra.push_back(uint32_t(lat - 1));
                out.maxIfetchExtra = std::max(
                    out.maxIfetchExtra, uint32_t(lat - 1));
            }
        }
        if (str.ucAccess(&op))
            ev |= kEvUcHit;
        if (bits & kOpReadsMem) {
            uint16_t match = str.sbMatch(&op);
            if (match) {
                ev |= kEvFwd;
                out.fwdMask.push_back(match);
            } else {
                ev |= kEvDLoad;
                uint32_t dl = uint32_t(str.dataLoad(&op));
                out.dloadExtra.push_back(dl);
                out.maxDloadExtra =
                    std::max(out.maxDloadExtra, dl);
            }
        }
        if (bits & kOpWritesMem) {
            str.dataStore(&op);
            str.sbPush(&op, head);
            head = head + 1 == kSbSize ? 0 : head + 1;
        }
        if (bits & kOpBranch) {
            bool mispredict = false;
            if (bits & kOpCondBranch)
                mispredict = str.branchAccess(&op);
            if (mispredict) {
                ev |= kEvMispredict;
                prev_mispredict = true;
            } else if (bits & kOpTaken) {
                if (str.btbAccess(&op))
                    ev |= kEvBtbMiss;
            }
        }

        out.ev.push_back(ev);
        done_uops += op.uops;
        idx = idx + 1 == n ? 0 : idx + 1;
        if (!warm_taken && done_uops >= warmup_uops) {
            warm_taken = true;
            str.snapshotCounters(out.warm);
        }
    }
    str.snapshotCounters(out.fin);
    return out;
}

namespace
{

using engine_detail::StepIn;

/** Structural backend answering from a memoized stream. */
struct ReplayStructural
{
    const StructuralStream &ss;
    size_t step = 0;
    uint8_t ev = 0;
    size_t ifetchCur = 0;
    size_t dloadCur = 0;
    size_t fwdCur = 0;

    explicit ReplayStructural(const StructuralStream &s) : ss(s) {}

    void beginStep() { ev = ss.ev[step++]; }
    void redirectFetch() {}

    int
    fetchAccess(const DynOp *, uint64_t)
    {
        if (!(ev & kEvIFetch))
            return -1;
        if (ev & kEvIFetchMiss)
            return 1 + int(ss.ifetchExtra[ifetchCur++]);
        return 1;
    }

    bool ucAccess(const DynOp *) { return ev & kEvUcHit; }

    uint16_t
    sbMatch(const DynOp *)
    {
        return (ev & kEvFwd) ? ss.fwdMask[fwdCur++] : 0;
    }

    uint64_t dataLoad(const DynOp *)
    {
        return ss.dloadExtra[dloadCur++];
    }

    void dataStore(const DynOp *) {}
    void sbPush(const DynOp *, size_t) {}
    bool branchAccess(const DynOp *) { return ev & kEvMispredict; }
    bool btbAccess(const DynOp *) { return ev & kEvBtbMiss; }

    void
    snapshotMem(PerfStats &s, bool final) const
    {
        const MemSnap &m = final ? ss.fin : ss.warm;
        s.l1iAccesses = m.l1iAccesses;
        s.l1iMisses = m.l1iMisses;
        s.l1dAccesses = m.l1dAccesses;
        s.l1dMisses = m.l1dMisses;
        s.l2Accesses = m.l2Accesses;
        s.l2Misses = m.l2Misses;
        s.memAccesses = m.memAccesses;
    }
};

/** Step source reading the packed trace. */
struct PackedSource
{
    const ReplayTrace &rt;
    bool first = true;

    explicit PackedSource(const ReplayTrace &r) : rt(r) {}

    size_t size() const { return rt.size(); }

    StepIn
    get(size_t idx)
    {
        StepIn in;
        in.bits = rt.bits[idx];
        if (first) {
            // The live engine has no previous op on step one.
            in.bits &= uint16_t(~kOpFusableBranch);
            first = false;
        }
        in.len = rt.len[idx];
        in.uops = rt.uops[idx];
        uint32_t b = rt.uopBegin[idx];
        in.xu = rt.xuops.data() + b;
        in.nxu = int(rt.uopBegin[idx + 1] - b);
        in.lineId = rt.lineId[idx];
        in.dop = nullptr;
        return in;
    }
};

} // namespace

PerfResult
simulateCoreReplay(const CoreConfig &cfg, const ReplayTrace &packed,
                   const StructuralStream &stream,
                   uint64_t timed_uops, uint64_t warmup_uops,
                   const RunEnv &env)
{
    panic_if(packed.size() == 0, "empty packed trace");
    panic_if(stream.key != structuralFingerprint(cfg.uarch, env),
             "structural stream was built for a different "
             "(config slice, environment)");
    panic_if(!packed.complete &&
                 warmup_uops + timed_uops > packed.maxSteps,
             "packed trace built for %llu steps, need up to %llu",
             (unsigned long long)packed.maxSteps,
             (unsigned long long)(warmup_uops + timed_uops));

    ReplayStructural str(stream);
    PackedSource src(packed);
    PerfResult res = engine_detail::runCore(cfg, str, src,
                                            timed_uops, warmup_uops);

    // The stream must have been generated with the same budgets: the
    // replay must consume it exactly.
    panic_if(str.step != stream.ev.size() ||
                 str.ifetchCur != stream.ifetchExtra.size() ||
                 str.dloadCur != stream.dloadExtra.size() ||
                 str.fwdCur != stream.fwdMask.size(),
             "structural stream not fully consumed: budget mismatch");
    return res;
}

} // namespace cisa
