/**
 * @file
 * Instruction-length model of the superset ISA's variable-length
 * encoding (Section V.A, Figure 3).
 *
 * Layout per instruction: optional legacy prefixes, the new optional
 * two-byte REXBC prefix (escape 0xd6 + 2 extension bits for each of
 * the three register operands), the new optional two-byte predicate
 * prefix (escape 0xf1 + true/not-true bit + 7-bit predicate register),
 * optional REX, 1-3 opcode bytes, ModRM, optional SIB, 0/1/4-byte
 * displacement, 0/1/4/8-byte immediate. The code-size consequences of
 * every feature axis (REXBC registers, predication, folded addressing
 * modes) flow through this model into the instruction cache, the
 * instruction-length decoder, and fetch energy.
 */

#ifndef CISA_ISA_ENCODING_HH
#define CISA_ISA_ENCODING_HH

#include "isa/opcodes.hh"

namespace cisa
{

/** Maximum legal instruction length of classic x86. */
constexpr int kX86MaxLen = 15;

/**
 * Maximum legal length in the superset ISA: the REXBC and predicate
 * prefixes add up to 4 bytes; the paper widens the macro-op queue
 * accordingly.
 */
constexpr int kSupersetMaxLen = kX86MaxLen + 4;

/** Encoding-relevant facts about one macro-op. */
struct EncInfo
{
    Op op = Op::Nop;
    MemForm form = MemForm::None;
    bool w64 = false;       ///< 64-bit operand size (REX.W)
    int maxGpr = -1;        ///< highest GPR index referenced, -1 none
    bool predicated = false;///< carries the predicate prefix
    int dispBytes = 0;      ///< memory displacement: 0, 1 or 4
    int immBytes = 0;       ///< immediate: 0, 1, 4 or 8
    bool indexReg = false;  ///< scaled-index addressing (needs SIB)
};

/** Opcode field size in bytes (includes mandatory SSE prefixes). */
int opcodeBytes(Op op);

/** Encoded length in bytes under the superset/x86 encoding. */
int x86EncodedLength(const EncInfo &e);

/** Encoded length on the fixed-length Alpha-like vendor ISA. */
int alphaEncodedLength(const EncInfo &e);

/**
 * Encoded length on the Thumb-like vendor ISA: 2 bytes for compact
 * forms, 4 when immediates/displacements/registers exceed the short
 * encoding.
 */
int thumbEncodedLength(const EncInfo &e);

/** Displacement field size for a byte offset. */
int dispBytesFor(long long disp);

/** Immediate field size for a value (w64 allows imm64 for MovImm). */
int immBytesFor(long long imm, bool w64);

} // namespace cisa

#endif // CISA_ISA_ENCODING_HH
