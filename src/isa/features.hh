/**
 * @file
 * The superset ISA and its composable feature sets.
 *
 * The paper derives custom ISAs from a single x86-compatible superset
 * along five axes (Section III): register depth (8/16/32/64), register
 * width (32/64), instruction complexity (microx86's 1:1 macro-op to
 * micro-op load-compute-store subset vs the full 1:n CISC x86),
 * predication (partial CMOV-style vs full), and data-parallel
 * execution (SSE present only on full-x86 feature sets). After
 * excluding non-viable combinations (8 registers only exists in 32-bit
 * mode; full predication needs more than 8 registers; 64-bit mode
 * needs at least 16 registers) exactly 26 feature sets remain.
 */

#ifndef CISA_ISA_FEATURES_HH
#define CISA_ISA_FEATURES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace cisa
{

/** Macro-op to micro-op complexity of the decode engine. */
enum class Complexity : uint8_t {
    MicroX86, ///< 1:1 load-compute-store subset (RISC-style)
    X86       ///< full 1:n CISC x86 with complex addressing modes
};

/** Architectural register width. */
enum class RegWidth : uint8_t { W32, W64 };

/** Predication support level. */
enum class Predication : uint8_t {
    Partial, ///< CMOV-style conditional moves only
    Full     ///< any instruction predicated on any GPR
};

/**
 * One composite feature set carved out of the superset ISA.
 *
 * Invariant: isViable() holds for every instance produced by the
 * factory functions below.
 */
struct FeatureSet
{
    Complexity complexity = Complexity::X86;
    uint8_t regDepth = 16; ///< programmable registers: 8, 16, 32, 64
    RegWidth width = RegWidth::W64;
    Predication predication = Predication::Partial;

    /** SSE-style packed SIMD; tied to full x86 decode (Section III). */
    bool simd() const { return complexity == Complexity::X86; }

    /** Register width in bits. */
    int widthBits() const { return width == RegWidth::W64 ? 64 : 32; }

    bool fullPredication() const
    {
        return predication == Predication::Full;
    }

    /** True if this combination is in the 26-set viable space. */
    bool isViable() const;

    /**
     * True if a core implementing this feature set can natively run
     * code compiled for @p code (a feature "upgrade" or exact match);
     * false means migration needs a downgrade translation.
     */
    bool subsumes(const FeatureSet &code) const;

    /** Canonical name, e.g. "microx86-16D-32W-P" or "x86-64D-64W-F". */
    std::string name() const;

    /** Dense index into enumerate() order; panics if not viable. */
    int id() const;

    bool operator==(const FeatureSet &o) const = default;

    /** All 26 viable feature sets, in a stable order. */
    static const std::vector<FeatureSet> &enumerate();

    /** Number of viable feature sets (26). */
    static int count();

    /** Feature set by dense id. */
    static FeatureSet byId(int id);

    /** Parse a canonical name; fatal() on malformed input. */
    static FeatureSet parse(const std::string &name);

    /** Build a feature set; panics if the combination is not viable. */
    static FeatureSet make(Complexity c, int depth, RegWidth w,
                           Predication p);

    /** The superset ISA itself: x86-64D-64W-F (+SSE). */
    static FeatureSet superset();

    /** Plain x86-64 with SSE: x86-16D-64W-P. */
    static FeatureSet x86_64();

    /** The x86-ized Thumb analogue (Table II): microx86-8D-32W-P. */
    static FeatureSet thumbLike();

    /** The x86-ized Alpha analogue (Table II): microx86-32D-64W-P. */
    static FeatureSet alphaLike();

    /** The most reduced feature set: microx86-8D-32W-P. */
    static FeatureSet minimal();
};

/**
 * Count of distinct customizable features implemented by a set of
 * cores, out of the 12 the paper tracks (4 register depths, 2 widths,
 * 2 complexities, 2 predication levels, 2 SIMD levels).
 */
int distinctFeatureCount(const std::vector<FeatureSet> &sets);

} // namespace cisa

#endif // CISA_ISA_FEATURES_HH
