#include "isa/vendor.hh"

#include "common/logging.hh"

namespace cisa
{

std::string
VendorModel::name() const
{
    switch (kind) {
      case VendorIsa::X86_64:    return "x86-64";
      case VendorIsa::AlphaLike: return "alpha";
      case VendorIsa::ThumbLike: return "thumb";
      case VendorIsa::Composite: return features.name();
    }
    panic("bad vendor kind");
}

VendorModel
VendorModel::composite(const FeatureSet &fs)
{
    VendorModel m;
    m.kind = VendorIsa::Composite;
    m.features = fs;
    return m;
}

VendorModel
VendorModel::vendor(VendorIsa kind)
{
    VendorModel m;
    m.kind = kind;
    m.crossIsaMigration = true;
    switch (kind) {
      case VendorIsa::X86_64:
        m.features = FeatureSet::x86_64();
        m.fixedLength = false;
        m.codeSizeFactor = 1.0;
        m.fpArchRegs = 16;
        break;
      case VendorIsa::AlphaLike:
        m.features = FeatureSet::alphaLike();
        m.fixedLength = true;
        // Fixed 4-byte instructions inflate the compact x86 forms.
        m.codeSizeFactor = 1.12;
        m.fpArchRegs = 32; // Alpha-exclusive: more FP registers
        break;
      case VendorIsa::ThumbLike:
        m.features = FeatureSet::thumbLike();
        m.fixedLength = true;
        // Thumb-exclusive code compression the superset cannot match.
        m.codeSizeFactor = 0.72;
        m.fpArchRegs = 16;
        break;
      case VendorIsa::Composite:
        panic("use VendorModel::composite() for composite sets");
    }
    return m;
}

std::vector<VendorModel>
VendorModel::multiVendorPalette()
{
    return {vendor(VendorIsa::X86_64), vendor(VendorIsa::AlphaLike),
            vendor(VendorIsa::ThumbLike)};
}

std::vector<VendorModel>
VendorModel::x86izedPalette()
{
    return {composite(FeatureSet::x86_64()),
            composite(FeatureSet::alphaLike()),
            composite(FeatureSet::thumbLike())};
}

} // namespace cisa
