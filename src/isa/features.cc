#include "isa/features.hh"

#include <array>
#include <cstdio>

#include "common/logging.hh"

namespace cisa
{

bool
FeatureSet::isViable() const
{
    if (regDepth != 8 && regDepth != 16 && regDepth != 32 &&
        regDepth != 64) {
        return false;
    }
    // 64-bit feature sets need a register depth of at least 16.
    if (width == RegWidth::W64 && regDepth < 16)
        return false;
    // Full predication is never profitable with only 8 registers; the
    // paper excludes those combinations outright.
    if (regDepth == 8 && predication == Predication::Full)
        return false;
    return true;
}

bool
FeatureSet::subsumes(const FeatureSet &code) const
{
    // A full-x86 decoder executes the microx86 subset natively, but a
    // microx86 core cannot decode 1:n macro-ops.
    if (complexity == Complexity::MicroX86 &&
        code.complexity == Complexity::X86) {
        return false;
    }
    if (regDepth < code.regDepth)
        return false;
    if (width == RegWidth::W32 && code.width == RegWidth::W64)
        return false;
    if (predication == Predication::Partial &&
        code.predication == Predication::Full) {
        return false;
    }
    if (!simd() && code.simd())
        return false;
    return true;
}

std::string
FeatureSet::name() const
{
    return strfmt("%s-%dD-%dW-%c",
                  complexity == Complexity::X86 ? "x86" : "microx86",
                  int(regDepth), widthBits(),
                  predication == Predication::Full ? 'F' : 'P');
}

const std::vector<FeatureSet> &
FeatureSet::enumerate()
{
    static const std::vector<FeatureSet> all = [] {
        std::vector<FeatureSet> v;
        const std::array<Complexity, 2> cs = {Complexity::MicroX86,
                                              Complexity::X86};
        const std::array<RegWidth, 2> ws = {RegWidth::W32,
                                            RegWidth::W64};
        const std::array<int, 4> ds = {8, 16, 32, 64};
        const std::array<Predication, 2> ps = {Predication::Partial,
                                               Predication::Full};
        for (auto c : cs)
            for (auto w : ws)
                for (auto d : ds)
                    for (auto p : ps) {
                        FeatureSet f{c, uint8_t(d), w, p};
                        if (f.isViable())
                            v.push_back(f);
                    }
        return v;
    }();
    return all;
}

int
FeatureSet::count()
{
    return int(enumerate().size());
}

int
FeatureSet::id() const
{
    const auto &all = enumerate();
    for (size_t i = 0; i < all.size(); i++) {
        if (all[i] == *this)
            return int(i);
    }
    panic("feature set %s is not viable", name().c_str());
}

FeatureSet
FeatureSet::byId(int id)
{
    const auto &all = enumerate();
    panic_if(id < 0 || size_t(id) >= all.size(),
             "feature set id %d out of range", id);
    return all[size_t(id)];
}

FeatureSet
FeatureSet::parse(const std::string &s)
{
    FeatureSet f;
    char complexity[16] = {0};
    int depth = 0, wbits = 0;
    char pred = 0;
    if (std::sscanf(s.c_str(), "%15[a-zA-Z0-9]-%dD-%dW-%c", complexity,
                    &depth, &wbits, &pred) != 4) {
        fatal("malformed feature set name '%s'", s.c_str());
    }
    std::string c = complexity;
    if (c == "x86") {
        f.complexity = Complexity::X86;
    } else if (c == "microx86") {
        f.complexity = Complexity::MicroX86;
    } else {
        fatal("unknown complexity '%s' in '%s'", c.c_str(), s.c_str());
    }
    f.regDepth = uint8_t(depth);
    if (wbits == 32) {
        f.width = RegWidth::W32;
    } else if (wbits == 64) {
        f.width = RegWidth::W64;
    } else {
        fatal("bad register width %d in '%s'", wbits, s.c_str());
    }
    if (pred == 'F') {
        f.predication = Predication::Full;
    } else if (pred == 'P') {
        f.predication = Predication::Partial;
    } else {
        fatal("bad predication flag '%c' in '%s'", pred, s.c_str());
    }
    if (!f.isViable())
        fatal("feature set '%s' is not viable", s.c_str());
    return f;
}

FeatureSet
FeatureSet::make(Complexity c, int depth, RegWidth w, Predication p)
{
    FeatureSet f{c, uint8_t(depth), w, p};
    panic_if(!f.isViable(), "non-viable feature set %s",
             f.name().c_str());
    return f;
}

FeatureSet
FeatureSet::superset()
{
    return make(Complexity::X86, 64, RegWidth::W64, Predication::Full);
}

FeatureSet
FeatureSet::x86_64()
{
    return make(Complexity::X86, 16, RegWidth::W64,
                Predication::Partial);
}

FeatureSet
FeatureSet::thumbLike()
{
    return make(Complexity::MicroX86, 8, RegWidth::W32,
                Predication::Partial);
}

FeatureSet
FeatureSet::alphaLike()
{
    return make(Complexity::MicroX86, 32, RegWidth::W64,
                Predication::Partial);
}

FeatureSet
FeatureSet::minimal()
{
    return thumbLike();
}

int
distinctFeatureCount(const std::vector<FeatureSet> &sets)
{
    bool depth[4] = {false, false, false, false};
    bool width[2] = {false, false};
    bool cplx[2] = {false, false};
    bool pred[2] = {false, false};
    bool simd[2] = {false, false};
    for (const auto &f : sets) {
        int di = f.regDepth == 8 ? 0 : f.regDepth == 16 ? 1
                 : f.regDepth == 32 ? 2 : 3;
        depth[di] = true;
        width[f.width == RegWidth::W64] = true;
        cplx[f.complexity == Complexity::X86] = true;
        pred[f.predication == Predication::Full] = true;
        simd[f.simd()] = true;
    }
    int n = 0;
    for (bool b : depth) n += b;
    for (bool b : width) n += b;
    for (bool b : cplx) n += b;
    for (bool b : pred) n += b;
    for (bool b : simd) n += b;
    return n;
}

} // namespace cisa
