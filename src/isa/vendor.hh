/**
 * @file
 * Vendor-specific ISA models for the heterogeneous-ISA baseline.
 *
 * The paper's "goal" configuration is a multi-vendor CMP mixing
 * x86-64, Alpha, and Thumb (Venkat & Tullsen, ISCA'14). Table II maps
 * each vendor ISA onto the nearest composite feature set plus the
 * vendor-exclusive traits the superset cannot replicate: Thumb's code
 * compression, and the fixed-length one-step decoding of Thumb and
 * Alpha. Cross-vendor migration requires full binary translation and
 * state transformation, unlike the cheap overlap migration between
 * composite feature sets.
 */

#ifndef CISA_ISA_VENDOR_HH
#define CISA_ISA_VENDOR_HH

#include <string>
#include <vector>

#include "isa/features.hh"

namespace cisa
{

/** Identity of an instruction-set vendor family. */
enum class VendorIsa : uint8_t {
    X86_64,    ///< full x86-64 with SSE
    AlphaLike, ///< Alpha: fixed-length RISC, 64-bit, 32 registers
    ThumbLike, ///< Thumb: compressed 32-bit RISC, 8 registers
    Composite  ///< a feature set of the single superset ISA
};

/** Properties of a vendor ISA as modelled in this study. */
struct VendorModel
{
    VendorIsa kind = VendorIsa::Composite;

    /** Closest composite feature set (Table II column 1). */
    FeatureSet features;

    /** Fixed-length encoding with one-step decoding (no ILD). */
    bool fixedLength = false;

    /**
     * Static code-size multiplier relative to the composite encoding
     * of the same feature set; captures Thumb's code compression and
     * Alpha's fixed 4-byte expansion of short x86 forms.
     */
    double codeSizeFactor = 1.0;

    /** Architectural FP registers (Alpha has more than x86/SSE). */
    int fpArchRegs = 16;

    /**
     * Migration to/from a different vendor ISA needs full binary
     * translation + program state transformation.
     */
    bool crossIsaMigration = false;

    /** Human-readable name. */
    std::string name() const;

    /** The vendor model for a composite feature set (no exclusives). */
    static VendorModel composite(const FeatureSet &fs);

    /** Vendor model by kind (Table II). */
    static VendorModel vendor(VendorIsa kind);

    /** The three-vendor CMP palette: x86-64, Alpha, Thumb. */
    static std::vector<VendorModel> multiVendorPalette();

    /** The x86-ized palette: same feature sets, no exclusives. */
    static std::vector<VendorModel> x86izedPalette();
};

} // namespace cisa

#endif // CISA_ISA_VENDOR_HH
