/**
 * @file
 * Operation vocabulary shared by the compiler backend, the machine
 * interpreter, and the timing models: macro-operation kinds, memory
 * addressing forms, micro-op classes, execution latencies, and the
 * macro-op to micro-op expansion rules that define the microx86 /
 * full-x86 split (Section III, "Instruction Complexity").
 */

#ifndef CISA_ISA_OPCODES_HH
#define CISA_ISA_OPCODES_HH

#include <cstdint>

namespace cisa
{

/** Semantic operation of a machine instruction. */
enum class Op : uint8_t {
    Mov,    ///< register-to-register copy
    MovImm, ///< load immediate
    Add, Sub, Mul, Div,
    And, Or, Xor, Shl, Shr,
    Adc,    ///< add with carry (64-bit emulation on 32-bit sets)
    Sbb,    ///< subtract with borrow
    MulHi,  ///< high half of a widening multiply
    Cmp,    ///< compare, writes the flags register
    Lea,    ///< address arithmetic (base + index*scale + disp)
    Branch, ///< conditional branch on flags
    Jump,   ///< unconditional branch
    Call, Ret,
    Cmov,   ///< partial predication: conditional move on flags
    Set,    ///< materialize a flags condition as 0/1
    FAdd, FSub, FMul, FDiv, FSqrt,
    FMovI,  ///< movq xmm <- gpr (FP constant materialization)
    I2F, F2I,
    VAdd, VSub, VMul, ///< packed SIMD (128-bit), 2 x f64 lanes
    VSplat,           ///< broadcast low lane (unpcklpd-style)
    VPack,            ///< combine two scalars into lanes
    VReduce,          ///< horizontal add of the two lanes
    Load,   ///< explicit load (mov reg, [mem])
    Store,  ///< explicit store (mov [mem], reg)
    Nop,
    NumOps
};

/** Printable mnemonic. */
const char *opName(Op op);

/** Memory-operand form of a macro-op. */
enum class MemForm : uint8_t {
    None,       ///< register/immediate operands only
    Load,       ///< pure load (also microx86-legal)
    Store,      ///< pure store (also microx86-legal)
    LoadOp,     ///< op with memory source, e.g. add rax, [mem]
    LoadOpStore ///< read-modify-write, e.g. add [mem], rax
};

/** Functional-unit class of a micro-op. */
enum class MicroClass : uint8_t {
    IntAlu, IntMul, IntDiv,
    FpAlu, FpMul, FpDiv,
    SimdAlu, SimdMul,
    Load, Store, Branch,
    NumClasses
};

/** Printable class name. */
const char *microClassName(MicroClass c);

/** Execution latency (cycles) of a micro-op class, excluding memory
 * hierarchy time for loads. Constexpr: evaluated once per issued uop
 * on the simulation hot path, so it must inline to a table lookup
 * rather than cost a call. */
constexpr int
microLatency(MicroClass c)
{
    switch (c) {
      case MicroClass::IntAlu:  return 1;
      case MicroClass::IntMul:  return 3;
      case MicroClass::IntDiv:  return 12;
      case MicroClass::FpAlu:   return 3;
      case MicroClass::FpMul:   return 4;
      case MicroClass::FpDiv:   return 12;
      case MicroClass::SimdAlu: return 2;
      case MicroClass::SimdMul: return 4;
      case MicroClass::Load:    return 1; // plus memory hierarchy
      case MicroClass::Store:   return 1;
      default:                  return 1; // Branch
    }
}

/** True if @p c issues to an integer ALU-type port. */
constexpr bool
isIntClass(MicroClass c)
{
    switch (c) {
      case MicroClass::IntAlu:
      case MicroClass::IntMul:
      case MicroClass::IntDiv:
      case MicroClass::Branch:
        return true;
      default:
        return false;
    }
}

/** True if @p c issues to the FP/SIMD port group. */
constexpr bool
isFpSimdClass(MicroClass c)
{
    switch (c) {
      case MicroClass::FpAlu:
      case MicroClass::FpMul:
      case MicroClass::FpDiv:
      case MicroClass::SimdAlu:
      case MicroClass::SimdMul:
        return true;
      default:
        return false;
    }
}

/** Compute micro-op class of @p op (ignoring memory form). */
MicroClass opClass(Op op);

/** True if the op is a packed SIMD operation. */
bool isSimdOp(Op op);

/** True if the op is a scalar floating-point operation. */
bool isFpOp(Op op);

/** True if the op is a control-transfer operation. */
bool isBranchOp(Op op);

/**
 * Number of micro-ops a macro-op decodes into on a full-x86 decoder.
 *
 * microx86 feature sets only admit forms where this is 1 (pure
 * register ops, pure loads, pure stores); the compiler's instruction
 * selector enforces that. On full x86: a load-op form adds a load
 * micro-op, a read-modify-write adds load + store + address
 * generation (1:4 via the complex decoder), and more than half of the
 * packed-SIMD forms crack into two micro-ops (the paper's rationale
 * for excluding SSE from microx86).
 */
int uopExpansion(Op op, MemForm form);

/** True if (op, form) is encodable in the microx86 subset. */
bool microx86Legal(Op op, MemForm form);

} // namespace cisa

#endif // CISA_ISA_OPCODES_HH
