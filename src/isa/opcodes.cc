#include "isa/opcodes.hh"

#include "common/logging.hh"

namespace cisa
{

const char *
opName(Op op)
{
    switch (op) {
      case Op::Mov:    return "mov";
      case Op::MovImm: return "movi";
      case Op::Add:    return "add";
      case Op::Sub:    return "sub";
      case Op::Mul:    return "imul";
      case Op::Div:    return "idiv";
      case Op::And:    return "and";
      case Op::Or:     return "or";
      case Op::Xor:    return "xor";
      case Op::Shl:    return "shl";
      case Op::Shr:    return "shr";
      case Op::Adc:    return "adc";
      case Op::Sbb:    return "sbb";
      case Op::MulHi:  return "mulh";
      case Op::Cmp:    return "cmp";
      case Op::Lea:    return "lea";
      case Op::Branch: return "jcc";
      case Op::Jump:   return "jmp";
      case Op::Call:   return "call";
      case Op::Ret:    return "ret";
      case Op::Cmov:   return "cmov";
      case Op::Set:    return "setcc";
      case Op::FAdd:   return "addsd";
      case Op::FSub:   return "subsd";
      case Op::FMul:   return "mulsd";
      case Op::FDiv:   return "divsd";
      case Op::FSqrt:  return "sqrtsd";
      case Op::FMovI:  return "movq";
      case Op::I2F:    return "cvtsi2sd";
      case Op::F2I:    return "cvttsd2si";
      case Op::VAdd:   return "addpd";
      case Op::VSub:   return "subpd";
      case Op::VMul:   return "mulpd";
      case Op::VSplat: return "unpcklpd";
      case Op::VPack:  return "shufpd";
      case Op::VReduce:return "haddpd";
      case Op::Load:   return "ld";
      case Op::Store:  return "st";
      case Op::Nop:    return "nop";
      default: panic("bad op %d", int(op));
    }
}

const char *
microClassName(MicroClass c)
{
    switch (c) {
      case MicroClass::IntAlu:  return "IntAlu";
      case MicroClass::IntMul:  return "IntMul";
      case MicroClass::IntDiv:  return "IntDiv";
      case MicroClass::FpAlu:   return "FpAlu";
      case MicroClass::FpMul:   return "FpMul";
      case MicroClass::FpDiv:   return "FpDiv";
      case MicroClass::SimdAlu: return "SimdAlu";
      case MicroClass::SimdMul: return "SimdMul";
      case MicroClass::Load:    return "Load";
      case MicroClass::Store:   return "Store";
      case MicroClass::Branch:  return "Branch";
      default: panic("bad micro class %d", int(c));
    }
}




MicroClass
opClass(Op op)
{
    switch (op) {
      case Op::Mov:
      case Op::MovImm:
      case Op::Add:
      case Op::Sub:
      case Op::Adc:
      case Op::Sbb:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Shl:
      case Op::Shr:
      case Op::Cmp:
      case Op::Lea:
      case Op::Cmov:
      case Op::Set:
      case Op::Nop:
        return MicroClass::IntAlu;
      case Op::Mul:
      case Op::MulHi:
        return MicroClass::IntMul;
      case Op::Div:
        return MicroClass::IntDiv;
      case Op::FAdd:
      case Op::FSub:
      case Op::FMovI:
      case Op::I2F:
      case Op::F2I:
        return MicroClass::FpAlu;
      case Op::FMul:
        return MicroClass::FpMul;
      case Op::FDiv:
      case Op::FSqrt:
        return MicroClass::FpDiv;
      case Op::VAdd:
      case Op::VSub:
      case Op::VSplat:
      case Op::VPack:
      case Op::VReduce:
        return MicroClass::SimdAlu;
      case Op::VMul:
        return MicroClass::SimdMul;
      case Op::Branch:
      case Op::Jump:
      case Op::Call:
      case Op::Ret:
        return MicroClass::Branch;
      case Op::Load:
        return MicroClass::Load;
      case Op::Store:
        return MicroClass::Store;
      default:
        panic("bad op %d", int(op));
    }
}

bool
isSimdOp(Op op)
{
    switch (op) {
      case Op::VAdd:
      case Op::VSub:
      case Op::VMul:
      case Op::VSplat:
      case Op::VPack:
      case Op::VReduce:
        return true;
      default:
        return false;
    }
}

bool
isFpOp(Op op)
{
    switch (op) {
      case Op::FAdd:
      case Op::FSub:
      case Op::FMul:
      case Op::FDiv:
      case Op::FSqrt:
      case Op::FMovI:
      case Op::I2F:
      case Op::F2I:
        return true;
      default:
        return false;
    }
}

bool
isBranchOp(Op op)
{
    return op == Op::Branch || op == Op::Jump || op == Op::Call ||
           op == Op::Ret;
}

int
uopExpansion(Op op, MemForm form)
{
    // Control transfers with memory forms do not occur in our
    // generated code; push/pop style stack ops are modelled as
    // explicit Load/Store.
    switch (form) {
      case MemForm::None:
        // Packed SIMD: many SSE compute ops rely on 1:n cracking
        // (Section III); we model the multiply and horizontal
        // families as 2 micro-ops. Aligned 128-bit moves are single
        // micro-ops.
        if (op == Op::VMul || op == Op::VReduce)
            return 2;
        return 1;
      case MemForm::Load:
      case MemForm::Store:
        return 1;
      case MemForm::LoadOp:
        return 1 + uopExpansion(op, MemForm::None);
      case MemForm::LoadOpStore:
        // load + op + store-address + store-data (served by the 1:4
        // complex decoder / microsequencer).
        return 4;
      default:
        panic("bad mem form %d", int(form));
    }
}

bool
microx86Legal(Op op, MemForm form)
{
    if (isSimdOp(op))
        return false; // microx86 never implements SSE
    switch (form) {
      case MemForm::None:
        return true;
      case MemForm::Load:
        return op == Op::Load;
      case MemForm::Store:
        return op == Op::Store;
      default:
        return false;
    }
}

} // namespace cisa
