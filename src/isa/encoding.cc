#include "isa/encoding.hh"

#include "common/logging.hh"
#include "isa/registers.hh"

namespace cisa
{

int
opcodeBytes(Op op)
{
    if (isSimdOp(op))
        return 3; // mandatory prefix + 0x0f escape + opcode
    if (isFpOp(op))
        return 3; // scalar SSE: f2/66 prefix + 0x0f + opcode
    switch (op) {
      case Op::Cmov:
        return 2; // 0x0f 0x4x
      case Op::Branch:
        return 1; // jcc rel8; rel32 handled via immBytes==4 below
      default:
        return 1;
    }
}

namespace
{

bool
needsModrm(const EncInfo &e)
{
    switch (e.op) {
      case Op::Jump:
      case Op::Call:
      case Op::Ret:
      case Op::Branch:
      case Op::Nop:
        return false;
      case Op::MovImm:
        // mov r, imm uses opcode+rd for legacy regs; ModRM form is
        // equivalent in length for our purposes.
        return false;
      default:
        return true;
    }
}

} // namespace

int
x86EncodedLength(const EncInfo &e)
{
    int len = opcodeBytes(e.op);

    // Branch-family instructions encode target as an immediate.
    if (e.op == Op::Branch && e.immBytes == 4)
        len += 1; // two-byte 0x0f 0x8x form for rel32

    bool needs_rex = e.w64 ||
        (e.maxGpr >= 8 && e.maxGpr < 16);
    bool needs_rexbc = e.maxGpr >= 16;
    if (needs_rexbc) {
        len += 2; // 0xd6 escape + extension byte
        // REXBC supplies only the top bits; REX still carries W and
        // the fourth bit, and is emitted alongside.
        needs_rex = needs_rex || true;
    }
    if (needs_rex)
        len += 1;
    if (e.predicated)
        len += 2; // 0xf1 escape + predicate byte

    if (needsModrm(e))
        len += 1;
    if (e.form != MemForm::None && e.indexReg)
        len += 1; // SIB
    if (e.form != MemForm::None)
        len += e.dispBytes;
    len += e.immBytes;

    panic_if(len > kSupersetMaxLen,
             "encoded length %d exceeds superset limit", len);
    return len;
}

int
alphaEncodedLength(const EncInfo &e)
{
    (void)e;
    return 4;
}

int
thumbEncodedLength(const EncInfo &e)
{
    // Compact 16-bit form: low 8 registers, tiny immediates, no
    // displacement. Anything else takes the 32-bit form.
    bool compact = e.maxGpr < 8 && e.immBytes <= 1 &&
                   e.dispBytes <= 1 && !e.w64 && !isSimdOp(e.op);
    return compact ? 2 : 4;
}

int
dispBytesFor(long long disp)
{
    if (disp == 0)
        return 0;
    if (disp >= -128 && disp <= 127)
        return 1;
    return 4;
}

int
immBytesFor(long long imm, bool w64)
{
    if (imm == 0)
        return 0;
    if (imm >= -128 && imm <= 127)
        return 1;
    if (imm >= -2147483648LL && imm <= 2147483647LL)
        return 4;
    panic_if(!w64, "imm64 on a 32-bit feature set");
    return 8;
}

} // namespace cisa
