/**
 * @file
 * Architectural register model of the superset ISA.
 *
 * The superset ISA widens x86-64's 16 GPRs to 64 by adding 48 extra
 * registers reachable through the REXBC prefix (Section V.A). Every
 * register is addressable as byte/word/dword/qword sub-registers with
 * the classic pairing restrictions lifted. Encoding cost grows with
 * register index: r0-r7 need no extension bits, r8-r15 need a REX
 * bit, and r16-r63 need the two-byte REXBC prefix — the register
 * allocator uses this to prefer cheap registers.
 */

#ifndef CISA_ISA_REGISTERS_HH
#define CISA_ISA_REGISTERS_HH

#include <cstdint>
#include <string>

namespace cisa
{

/** Maximum general-purpose register depth of the superset ISA. */
constexpr int kMaxRegDepth = 64;

/** Number of architectural XMM registers (SSE feature sets). */
constexpr int kXmmRegs = 16;

/** Encoding tier of a GPR index. */
enum class RegTier : uint8_t {
    Legacy, ///< r0-r7: encodable in ModRM alone
    Rex,    ///< r8-r15: needs a REX extension bit
    Rexbc   ///< r16-r63: needs the two-byte REXBC prefix
};

/** Encoding tier for GPR index @p reg (0-63). */
RegTier regTier(int reg);

/** Extra prefix bytes needed solely because of this register. */
int regPrefixBytes(int reg);

/** Sub-register access size in bits. */
enum class SubReg : uint8_t { Byte = 8, Word = 16, Dword = 32,
                              Qword = 64 };

/**
 * Assembly name of GPR @p reg viewed at @p bits width, following x86
 * conventions for r0-r15 (rax/eax/ax/al, r8/r8d/r8w/r8b) and the
 * superset's rNN[d|w|b] naming for the REXBC registers.
 */
std::string regName(int reg, int bits);

/** Assembly name of XMM register @p reg. */
std::string xmmName(int reg);

} // namespace cisa

#endif // CISA_ISA_REGISTERS_HH
