#include "isa/registers.hh"

#include <array>

#include "common/logging.hh"

namespace cisa
{

RegTier
regTier(int reg)
{
    panic_if(reg < 0 || reg >= kMaxRegDepth, "bad GPR index %d", reg);
    if (reg < 8)
        return RegTier::Legacy;
    if (reg < 16)
        return RegTier::Rex;
    return RegTier::Rexbc;
}

int
regPrefixBytes(int reg)
{
    switch (regTier(reg)) {
      case RegTier::Legacy: return 0;
      case RegTier::Rex:    return 1;
      case RegTier::Rexbc:  return 2;
    }
    return 0;
}

std::string
regName(int reg, int bits)
{
    static const std::array<const char *, 8> q = {
        "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi"};
    static const std::array<const char *, 8> d = {
        "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"};
    static const std::array<const char *, 8> w = {
        "ax", "cx", "dx", "bx", "sp", "bp", "si", "di"};
    static const std::array<const char *, 8> b = {
        "al", "cl", "dl", "bl", "spl", "bpl", "sil", "dil"};

    panic_if(reg < 0 || reg >= kMaxRegDepth, "bad GPR index %d", reg);
    if (reg < 8) {
        switch (bits) {
          case 64: return q[size_t(reg)];
          case 32: return d[size_t(reg)];
          case 16: return w[size_t(reg)];
          case 8:  return b[size_t(reg)];
          default: panic("bad sub-register width %d", bits);
        }
    }
    const char *suffix = bits == 64 ? "" : bits == 32 ? "d"
                         : bits == 16 ? "w" : "b";
    return strfmt("r%d%s", reg, suffix);
}

std::string
xmmName(int reg)
{
    panic_if(reg < 0 || reg >= kXmmRegs, "bad XMM index %d", reg);
    return strfmt("xmm%d", reg);
}

} // namespace cisa
