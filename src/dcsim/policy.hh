/**
 * @file
 * Pluggable placement policies for the datacenter simulator. A
 * policy answers one question: given a job about to start phase gp,
 * in which order should the tile classes be tried? The engine walks
 * the ranking and takes the first class with a free tile, so a
 * ranking is a full permutation — a job never starves because its
 * favourite class is busy.
 *
 *  - random:    a seeded shuffle (the null hypothesis)
 *  - homog:     a fixed ranking by mean per-phase time (mean
 *               time x energy under the EDP objective) — placement
 *               that treats the grid as homogeneous "best cores
 *               first"; the scheduling baseline the affinity gain
 *               is measured against
 *  - affinity:  greedy per-phase ranking straight from the slab
 *               tables (Figure 13's preference regime at scale)
 *  - migration: affinity, but each class's phase cost is charged
 *               the src/migration penalty for moving off the job's
 *               current class (composite overlap vs full cross-ISA
 *               translation), so cheap phases stay put
 *
 * rankClasses() is pure: it reads only the bound cluster tables and
 * its arguments, and resolves ties by class index — rankings are
 * bit-reproducible from any thread, which is what lets the engine
 * score same-tick batches on the pool without losing determinism.
 */

#ifndef CISA_DCSIM_POLICY_HH
#define CISA_DCSIM_POLICY_HH

#include <cstdint>
#include <string>

#include "dcsim/cluster.hh"

namespace cisa
{

enum class DcPolicy : uint8_t
{
    Random,
    HomogBest,
    Affinity,
    MigrationAware
};

enum class DcObjective : uint8_t
{
    Time, ///< rank by per-phase seconds
    Edp   ///< rank by per-phase seconds x joules
};

/** Parse "random" / "homog" / "affinity" / "migration". */
bool parseDcPolicy(const std::string &name, DcPolicy *out);
const char *dcPolicyName(DcPolicy p);

bool parseDcObjective(const std::string &name, DcObjective *out);
const char *dcObjectiveName(DcObjective o);

/** Upper bound on tile classes a cluster may have (stack buffers in
 * the scoring hot path are sized by it). */
constexpr int kMaxTileClasses = 32;

/**
 * Write the class ranking (best first) for a job entering global
 * phase @p gp into @p out[0 .. nClasses). @p cur_class is the class
 * the job currently occupies (-1 before first placement); @p runs is
 * the phase's run count (weights the one-off migration penalty
 * against the phase's total work); @p rnd seeds the random policy's
 * shuffle. Pure and deterministic (ties by class index).
 */
void rankClasses(const Cluster &cluster, DcPolicy policy,
                 DcObjective obj, int gp, int cur_class, double runs,
                 uint64_t rnd, uint8_t *out);

/** Table lookups one ranking performs (for cache-hit accounting):
 * the per-phase policies read one cell per class, the fixed ones
 * none. */
uint64_t rankLookups(DcPolicy policy, size_t n_classes);

} // namespace cisa

#endif // CISA_DCSIM_POLICY_HH
