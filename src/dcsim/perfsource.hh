/**
 * @file
 * Where the datacenter simulator's placement policies get their
 * numbers: per-(design point, phase) PhasePerf served from cached
 * slab tables. Two interchangeable backends answer a slab request —
 * the in-process Campaign (computes or loads from the durable slab
 * store) and the cisa-serve fleet over the wire (the scheduler as a
 * heavy client of the service). Both return byte-identical slabs, so
 * every downstream placement decision — and therefore the whole
 * simulation — is identical between them; the dcsim smoke test
 * asserts exactly that.
 *
 * Each slab is fetched at most once and cached for the lifetime of
 * the source; counters record cell lookups, slab fetches, and remote
 * wall time so the scale bench can report the slab cache-hit rate
 * and the fleet traffic the scheduler generated.
 */

#ifndef CISA_DCSIM_PERFSOURCE_HH
#define CISA_DCSIM_PERFSOURCE_HH

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "explore/campaign.hh"

namespace cisa
{

class Client;

class PerfSource
{
  public:
    /** Empty @p fleet_address = in-process Campaign; otherwise the
     * cisa-serve / cisa_router address slabs are fetched from. */
    explicit PerfSource(std::string fleet_address = {});
    ~PerfSource();

    PerfSource(const PerfSource &) = delete;
    PerfSource &operator=(const PerfSource &) = delete;

    /**
     * Full PhasePerf block of @p slab (uarch-major, the
     * computeSlabPerf layout), fetched on first touch and cached.
     * Thread-safe; concurrent requests for one slab fetch it once.
     * panic()s if the fleet cannot deliver the slab after the
     * client's retry budget.
     */
    const std::vector<PhasePerf> &slab(int slab);

    /** True when slabs come over the wire. */
    bool fleet() const { return !addr_.empty(); }

    /** Record @p n policy-level cell lookups answered from bound
     * tables (relaxed; called once per scoring batch). */
    void
    countLookups(uint64_t n)
    {
        cellLookups_.fetch_add(n, std::memory_order_relaxed);
    }

    struct Stats
    {
        uint64_t cellLookups = 0; ///< (class, phase) queries answered
        uint64_t slabFetches = 0; ///< slabs pulled into the cache
        uint64_t remoteCalls = 0; ///< fleet requests issued
        uint64_t fetchNs = 0;     ///< wall time inside fetches
        /** Fraction of cell lookups answered without pulling a slab. */
        double hitRate() const
        {
            return cellLookups == 0
                       ? 1.0
                       : 1.0 - double(slabFetches) /
                                   double(cellLookups);
        }
    };

    Stats stats() const;

  private:
    std::vector<PhasePerf> fetch(int slab);

    std::string addr_;
    std::unique_ptr<Client> client_; ///< fleet mode only; under mu_
    std::mutex mu_;
    std::array<std::atomic<bool>, Campaign::kSlabs> ready_{};
    std::array<std::vector<PhasePerf>, Campaign::kSlabs> cache_;

    std::atomic<uint64_t> cellLookups_{0};
    std::atomic<uint64_t> slabFetches_{0};
    std::atomic<uint64_t> remoteCalls_{0};
    std::atomic<uint64_t> fetchNs_{0};
};

} // namespace cisa

#endif // CISA_DCSIM_PERFSOURCE_HH
