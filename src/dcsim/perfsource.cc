#include "dcsim/perfsource.hh"

#include <chrono>

#include "common/logging.hh"
#include "service/client.hh"

namespace cisa
{

PerfSource::PerfSource(std::string fleet_address)
    : addr_(std::move(fleet_address))
{
}

PerfSource::~PerfSource() = default;

std::vector<PhasePerf>
PerfSource::fetch(int slab)
{
    if (addr_.empty())
        return Campaign::get().slabPerf(slab);

    // Lazily opened so a source constructed for a fleet that is
    // never consulted costs no connection. Caller holds mu_.
    if (!client_) {
        client_ = std::make_unique<Client>();
        std::string err;
        panic_if(!client_->connect(addr_, &err),
                 "dcsim: cannot reach fleet at %s: %s",
                 addr_.c_str(), err.c_str());
    }
    remoteCalls_.fetch_add(1, std::memory_order_relaxed);
    std::vector<PhasePerf> block;
    Status st = client_->slabPerf(slab, &block);
    panic_if(st != Status::Ok,
             "dcsim: fleet slab %d failed: %s (%s)", slab,
             statusName(st), client_->lastError().c_str());
    return block;
}

const std::vector<PhasePerf> &
PerfSource::slab(int slab)
{
    panic_if(slab < 0 || slab >= Campaign::kSlabs, "bad slab %d",
             slab);
    auto &ready = ready_[size_t(slab)];
    if (!ready.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!ready.load(std::memory_order_relaxed)) {
            auto t0 = std::chrono::steady_clock::now();
            cache_[size_t(slab)] = fetch(slab);
            auto dt = std::chrono::steady_clock::now() - t0;
            fetchNs_.fetch_add(
                uint64_t(std::chrono::duration_cast<
                             std::chrono::nanoseconds>(dt)
                             .count()),
                std::memory_order_relaxed);
            slabFetches_.fetch_add(1, std::memory_order_relaxed);
            ready.store(true, std::memory_order_release);
        }
    }
    return cache_[size_t(slab)];
}

PerfSource::Stats
PerfSource::stats() const
{
    Stats s;
    s.cellLookups = cellLookups_.load(std::memory_order_relaxed);
    s.slabFetches = slabFetches_.load(std::memory_order_relaxed);
    s.remoteCalls = remoteCalls_.load(std::memory_order_relaxed);
    s.fetchNs = fetchNs_.load(std::memory_order_relaxed);
    return s;
}

} // namespace cisa
