#include "dcsim/cluster.hh"

#include <algorithm>
#include <cstdlib>

#include "common/env.hh"
#include "common/logging.hh"
#include "workloads/profiles.hh"

namespace cisa
{

namespace
{

/** First enumerate() entry satisfying @p pred; panics if none. */
template <typename Pred>
int
findUarch(const char *what, Pred pred)
{
    const auto &all = MicroArchConfig::enumerate();
    for (size_t u = 0; u < all.size(); u++) {
        if (pred(all[u]))
            return int(u);
    }
    panic("dcsim: no %s microarchitecture in the design space",
          what);
}

/** Mid-range OoO design — the reference core's microarchitecture. */
int
midUarch()
{
    static const int id = findUarch("mid-range OoO",
        [](const MicroArchConfig &c) {
            return c.outOfOrder && c.width == 2 &&
                   c.bpred == BpKind::Tournament && c.iqSize == 64 &&
                   c.l1iKB == 32 && c.uopCache && c.lsqSize == 16;
        });
    return id;
}

/** Beefiest OoO design: lexicographic max over the resources that
 * matter, taken over the stable enumerate() order. */
int
bigUarch()
{
    static const int id = [] {
        const auto &all = MicroArchConfig::enumerate();
        int best = -1;
        auto key = [](const MicroArchConfig &c) {
            return std::tuple(c.outOfOrder, c.width, c.iqSize,
                              c.robSize, c.l1dKB, c.uopCache);
        };
        for (size_t u = 0; u < all.size(); u++) {
            if (best < 0 || key(all[u]) > key(all[size_t(best)]))
                best = int(u);
        }
        return best;
    }();
    return id;
}

/** Littlest in-order design (falls back to the overall minimum if
 * the pruned space had no in-order entry). */
int
littleUarch()
{
    static const int id = [] {
        const auto &all = MicroArchConfig::enumerate();
        int best = -1;
        auto key = [](const MicroArchConfig &c) {
            return std::tuple(c.outOfOrder, c.width, c.iqSize,
                              c.robSize, c.l1dKB, c.uopCache);
        };
        for (size_t u = 0; u < all.size(); u++) {
            if (best < 0 || key(all[u]) < key(all[size_t(best)]))
                best = int(u);
        }
        return best;
    }();
    return id;
}

DesignPoint
x86Preset()
{
    return DesignPoint::composite(FeatureSet::x86_64().id(),
                                  midUarch());
}

/** Preset name -> design point; false if unknown. */
bool
presetPoint(const std::string &name, DesignPoint *out)
{
    if (name == "big") {
        *out = DesignPoint::composite(FeatureSet::superset().id(),
                                      bigUarch());
    } else if (name == "x86") {
        *out = x86Preset();
    } else if (name == "alpha") {
        *out = DesignPoint::composite(FeatureSet::alphaLike().id(),
                                      midUarch());
    } else if (name == "thumb") {
        *out = DesignPoint::composite(FeatureSet::thumbLike().id(),
                                      littleUarch());
    } else if (name.size() > 1 && name[0] == 'c') {
        // Raw composite coordinates: c<isa>u<uarch>.
        size_t upos = name.find('u', 1);
        if (upos == std::string::npos)
            return false;
        char *end = nullptr;
        long isa = std::strtol(name.c_str() + 1, &end, 10);
        if (end != name.c_str() + upos)
            return false;
        long ua = std::strtol(name.c_str() + upos + 1, &end, 10);
        if (*end != '\0')
            return false;
        if (isa < 0 || isa >= FeatureSet::count() || ua < 0 ||
            ua >= DesignPoint::kUarchCount)
            return false;
        *out = DesignPoint::composite(int(isa), int(ua));
    } else {
        return false;
    }
    return true;
}

} // namespace

Cluster
Cluster::fromMix(const std::string &mix_spec, uint64_t cores)
{
    Cluster cl;
    uint64_t total_weight = 0;

    size_t pos = 0;
    while (pos < mix_spec.size()) {
        size_t comma = mix_spec.find(',', pos);
        if (comma == std::string::npos)
            comma = mix_spec.size();
        std::string item = mix_spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (item.empty())
            continue;
        size_t eq = item.find('=');
        std::string name = item.substr(0, eq);
        uint64_t weight = 1;
        if (eq != std::string::npos) {
            char *end = nullptr;
            long w = std::strtol(item.c_str() + eq + 1, &end, 10);
            panic_if(*end != '\0' || w <= 0,
                     "dcsim: bad mix weight in '%s'", item.c_str());
            weight = uint64_t(w);
        }
        TileClass tc;
        tc.label = name;
        panic_if(!presetPoint(name, &tc.point),
                 "dcsim: unknown tile class '%s' (presets: big, "
                 "x86, alpha, thumb, or raw c<isa>u<uarch>)",
                 name.c_str());
        cl.classes_.push_back(std::move(tc));
        total_weight += weight;
        cl.classes_.back().count = weight; // weight, resized below
    }
    panic_if(cl.classes_.empty(), "dcsim: empty tile mix '%s'",
             mix_spec.c_str());
    panic_if(cores < cl.classes_.size(),
             "dcsim: %llu cores cannot host %zu tile classes",
             (unsigned long long)cores, cl.classes_.size());

    // Largest-remainder apportionment of cores over the weights,
    // with every class guaranteed one tile. Deterministic: remainder
    // ties resolve by class order.
    size_t n = cl.classes_.size();
    std::vector<uint64_t> share(n, 1);
    uint64_t assigned = n;
    std::vector<double> frac(n);
    for (size_t i = 0; i < n; i++) {
        double exact = double(cores) * double(cl.classes_[i].count) /
                       double(total_weight);
        uint64_t whole = uint64_t(exact);
        if (whole > share[i]) {
            assigned += whole - share[i];
            share[i] = whole;
        }
        frac[i] = exact - double(whole);
    }
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; i++)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                         return frac[a] > frac[b];
                     });
    for (size_t k = 0; assigned < cores; k = (k + 1) % n) {
        share[order[k]]++;
        assigned++;
    }
    // Over-assignment can only come from the 1-tile floors; shave
    // whole shares largest-first until the count fits.
    for (size_t k = 0; assigned > cores; k = (k + 1) % n) {
        size_t i = order[n - 1 - k % n];
        if (share[i] > 1) {
            share[i]--;
            assigned--;
        }
    }

    uint64_t at = 0;
    for (size_t i = 0; i < n; i++) {
        cl.classes_[i].count = share[i];
        cl.classes_[i].firstTile = at;
        cl.classes_[i].areaMm2 = cl.classes_[i].point.areaMm2();
        cl.classes_[i].idlePowerW =
            cl.classes_[i].point.peakPowerW() *
            double(dcsimIdlePct()) / 100.0;
        at += share[i];
    }
    cl.tiles_ = at;
    panic_if(cl.tiles_ != cores, "dcsim: apportioned %llu != %llu",
             (unsigned long long)cl.tiles_,
             (unsigned long long)cores);
    return cl;
}

Cluster
Cluster::homogeneousBaseline() const
{
    DesignPoint base = x86Preset();
    double tile_area = base.areaMm2();
    uint64_t cores = std::max<uint64_t>(
        1, uint64_t(totalAreaMm2() / tile_area));
    return fromMix("x86=1", cores);
}

void
Cluster::bindPerf(PerfSource &src)
{
    if (bound_)
        return;
    int phases = phaseCount();
    for (TileClass &tc : classes_) {
        const std::vector<PhasePerf> &block =
            src.slab(Campaign::slabOf(tc.point));
        tc.timePerRun.resize(size_t(phases));
        tc.energyPerRun.resize(size_t(phases));
        double t_sum = 0, te_sum = 0;
        for (int p = 0; p < phases; p++) {
            const PhasePerf &pp =
                block[size_t(tc.point.uarchId) * size_t(phases) +
                      size_t(p)];
            tc.timePerRun[size_t(p)] = pp.timePerRun;
            tc.energyPerRun[size_t(p)] = pp.energyPerRun;
            t_sum += double(pp.timePerRun);
            te_sum +=
                double(pp.timePerRun) * double(pp.energyPerRun);
        }
        tc.meanTime = t_sum / double(phases);
        tc.meanTimeEnergy = te_sum / double(phases);
        src.countLookups(uint64_t(phases));
    }
    bound_ = true;
}

double
Cluster::totalAreaMm2() const
{
    double s = 0;
    for (const TileClass &tc : classes_)
        s += tc.areaMm2 * double(tc.count);
    return s;
}

std::string
Cluster::describe() const
{
    std::string s;
    for (const TileClass &tc : classes_) {
        if (!s.empty())
            s += ",";
        s += tc.label + "=" + std::to_string(tc.count);
    }
    return s;
}

} // namespace cisa
