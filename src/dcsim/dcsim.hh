/**
 * @file
 * cisa-dcsim: a discrete-event scheduling simulator for a grid of
 * thousands-to-millions of composite-ISA cores — the paper's 4-core
 * multiprogrammed regime (Section VII, Figures 13/15) scaled to the
 * datacenter.
 *
 * Model: jobs are benchmark programs from the workload suite; each
 * runs its SimPoint phase sequence, one phase at a time, on one tile
 * of the cluster. At every phase boundary the placement policy
 * re-ranks the tile classes (so jobs migrate toward affine cores,
 * paying the src/migration penalty per move), and the phase's
 * duration and energy come from the DSE slab tables through a
 * PerfSource — in-process or served by the cisa-serve fleet.
 *
 * Engine: a binary-heap event queue over an integer virtual clock
 * (1 tick = 1 ns) with (tick, seq) tie-breaking. All randomness —
 * job interarrivals (open loop, exponential), benchmark draws, the
 * random policy's shuffles — is hash-keyed per (seed, index), never
 * a shared stream. Same-tick placement batches of at least
 * CISA_DCSIM_PAR_BATCH score in parallel on the PR 1 pool into
 * disjoint slots and commit serially in event order, so the
 * placement trace, every counter, and the summary JSON are
 * byte-identical at any CISA_THREADS and between the in-process and
 * fleet-served slab paths.
 */

#ifndef CISA_DCSIM_DCSIM_HH
#define CISA_DCSIM_DCSIM_HH

#include <cstdint>
#include <string>

#include "dcsim/cluster.hh"
#include "dcsim/policy.hh"

namespace cisa
{

/** One simulation's knobs. */
struct DcsimConfig
{
    uint64_t cores = 4096;
    uint64_t jobs = 100000;
    DcPolicy policy = DcPolicy::Affinity;
    DcObjective objective = DcObjective::Time;
    uint64_t seed = 1;

    /** Open-loop arrival rate in jobs per virtual second; <= 0 runs
     * closed-loop with `inflight` jobs admitted at once. */
    double rate = 0;
    /** Closed-loop multiprogramming level (0 = one job per tile). */
    uint64_t inflight = 0;

    /** Tile mix spec (see cluster.hh). */
    std::string mix = "big=1,x86=1,alpha=1,thumb=1";

    /** Scales every phase's run count — virtual work per job. */
    double runsScale = 0.01;

    /** Optional path for the full placement trace (one line per
     * placement); empty = hash only. */
    std::string tracePath;
};

/** Simulation outcome. Everything above the host-stats block is
 * virtual-time and bit-deterministic in (config, slab tables). */
struct DcsimResult
{
    // Echo of what actually ran (the baseline run differs from the
    // requested config), so a result renders without its config.
    std::string mix;     ///< resolved "label=count,..." of the grid
    DcPolicy policy = DcPolicy::Affinity;
    DcObjective objective = DcObjective::Time;
    uint64_t seed = 0;
    uint64_t jobs = 0;   ///< requested job count
    double rate = 0;
    double runsScale = 0;

    uint64_t cores = 0;
    uint64_t jobsDone = 0;
    uint64_t placements = 0;
    uint64_t migrations = 0;        ///< placements that moved tiles
    uint64_t crossIsaMigrations = 0;///< moved across vendor families
    uint64_t waitedJobs = 0;        ///< placements that queued first
    uint64_t peakWaiting = 0;       ///< wait-queue high-water mark
    uint64_t makespanTicks = 0;     ///< ns of virtual time
    uint64_t sojournP50 = 0;        ///< job arrival->finish, ns
    uint64_t sojournP99 = 0;
    uint64_t sojournMax = 0;
    double throughputVs = 0;        ///< jobs per virtual second
    double busyEnergyJ = 0;
    double idleEnergyJ = 0;
    double energyJ = 0;
    double edp = 0;                 ///< energy x makespan
    double utilization = 0;         ///< busy ticks / (tiles x span)
    uint64_t cellLookups = 0;
    uint64_t traceHash = 0;         ///< FNV/mix over all placements

    // Host-side (wall clock / source cache state; NOT part of the
    // deterministic surface, reported separately).
    uint64_t slabFetches = 0; ///< 0 when the PerfSource was warm
    double slabHitRate = 0;
    double wallSeconds = 0;
    double wallJobsPerSec = 0;
    uint64_t placeP50Ns = 0; ///< per-placement scoring latency
    uint64_t placeP99Ns = 0;
    uint64_t remoteCalls = 0;
    double fetchSeconds = 0; ///< wall time fetching slabs
};

/** Run one simulation on a cluster built from @p cfg.mix/cores. */
DcsimResult runDcsim(const DcsimConfig &cfg, PerfSource &src);

/** Run one simulation on an explicit (already apportioned) cluster;
 * bindPerf() is called if needed. */
DcsimResult runDcsim(const DcsimConfig &cfg, PerfSource &src,
                     Cluster &cluster);

/** A run plus its iso-area homogeneous baseline (same job stream on
 * a plain-x86-64 grid of equal silicon, homog policy). */
struct DcsimComparison
{
    DcsimResult run;
    DcsimResult baseline;
    double throughputX = 0; ///< run / baseline (higher = better)
    double edpX = 0;        ///< baseline / run (higher = better)
};

DcsimComparison runWithBaseline(const DcsimConfig &cfg,
                                PerfSource &src);

/**
 * Canonical JSON rendering. The default body contains only the
 * deterministic virtual-time fields — the byte-identity surface of
 * the determinism contract; @p host_stats appends the wall-clock
 * block (bench use). Lines after the first are indented @p indent
 * spaces so the object can nest.
 */
std::string dcsimJson(const DcsimResult &r, bool host_stats = false,
                      int indent = 0);

/** Comparison JSON: {"run": ..., "baseline": ..., "vs": ...}. */
std::string dcsimComparisonJson(const DcsimComparison &c,
                                bool host_stats = false);

} // namespace cisa

#endif // CISA_DCSIM_DCSIM_HH
