#include "dcsim/dcsim.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <queue>
#include <vector>

#include "common/env.hh"
#include "common/hash.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "explore/schedule.hh"
#include "migration/cost.hh"
#include "power/calib.hh"
#include "workloads/profiles.hh"

namespace cisa
{

namespace
{

enum : uint8_t
{
    kArrival = 0,  ///< arg = job uid
    kPhaseDone = 1 ///< arg = job slot
};

struct Ev
{
    uint64_t tick;
    uint64_t seq; ///< push order — the deterministic tie-break
    uint64_t arg;
    uint8_t kind;
};

struct EvAfter
{
    bool
    operator()(const Ev &a, const Ev &b) const
    {
        if (a.tick != b.tick)
            return a.tick > b.tick;
        return a.seq > b.seq;
    }
};

/** One in-flight job. Slots are recycled through a free list, so
 * live memory is O(in-flight + waiting), not O(total jobs). */
struct Job
{
    uint64_t uid = 0;
    uint64_t arrivalTick = 0;
    int64_t tile = -1;
    int16_t cls = -1;
    uint8_t bench = 0;
    uint8_t phase = 0; ///< local phase index within the benchmark
};

struct PlaceReq
{
    uint32_t slot;
    uint8_t holding; ///< still occupies a tile (phase boundary)
};

uint64_t
wallNs()
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Approximate percentile from a log2-bucketed histogram: the upper
 * bound of the bucket holding the rank. */
uint64_t
histPercentile(const uint64_t (&h)[64], uint64_t total, double p)
{
    if (total == 0)
        return 0;
    uint64_t target = uint64_t(p * double(total - 1)) + 1;
    uint64_t cum = 0;
    for (int b = 0; b < 64; b++) {
        cum += h[b];
        if (cum >= target)
            return b == 0 ? 1 : (uint64_t(1) << b);
    }
    return ~uint64_t(0);
}

class Engine
{
  public:
    Engine(const DcsimConfig &cfg, PerfSource &src, Cluster &cluster)
        : cfg_(cfg), src_(src), cluster_(cluster)
    {
        uint64_t base = splitmix64(cfg.seed);
        arrSeed_ = hashCombine(base, 1);
        benchSeed_ = hashCombine(base, 2);
        polSeed_ = hashCombine(base, 3);
        parBatch_ = dcsimParBatch();
        closedLoop_ = cfg.rate <= 0;
    }

    DcsimResult run();

  private:
    // --- the seeded synthetic job stream ------------------------
    uint8_t
    benchOf(uint64_t uid) const
    {
        return uint8_t(splitmix64(hashCombine(benchSeed_, uid)) %
                       uint64_t(nBench_));
    }

    /** Exponential interarrival gap ahead of job @p uid, in ticks.
     * Hash-keyed by uid: the stream is order-independent. */
    uint64_t
    interTicks(uint64_t uid) const
    {
        uint64_t h = splitmix64(hashCombine(arrSeed_, uid));
        double u = double(h >> 11) * 0x1p-53; // [0, 1)
        double dt = -std::log1p(-u) / cfg_.rate;
        return std::max<uint64_t>(1, uint64_t(std::llround(dt * 1e9)));
    }

    void
    pushEvent(uint64_t tick, uint8_t kind, uint64_t arg)
    {
        heap_.push(Ev{tick, seq_++, arg, kind});
    }

    uint32_t
    allocSlot()
    {
        if (!freeSlots_.empty()) {
            uint32_t s = freeSlots_.back();
            freeSlots_.pop_back();
            return s;
        }
        jobs_.emplace_back();
        return uint32_t(jobs_.size() - 1);
    }

    void arrive(uint64_t t, uint64_t uid);
    void phaseDone(uint64_t t, uint32_t slot);
    void scoreAndCommit(uint64_t t);
    void commit(uint64_t t, const PlaceReq &rq, const uint8_t *rank);
    DcsimResult finalize(uint64_t wall_ns,
                         const PerfSource::Stats &s0,
                         const PerfSource::Stats &s1) const;

    const DcsimConfig &cfg_;
    PerfSource &src_;
    Cluster &cluster_;

    uint64_t arrSeed_, benchSeed_, polSeed_;
    int parBatch_;
    bool closedLoop_;

    int nBench_ = 0;
    std::vector<int> starts_;      ///< bench -> first global phase
    std::vector<int> phasesPer_;   ///< bench -> phase count
    std::vector<double> runsByGp_; ///< global phase -> run count

    std::priority_queue<Ev, std::vector<Ev>, EvAfter> heap_;
    uint64_t seq_ = 0;
    uint64_t nextUid_ = 0; ///< closed loop: next admission

    std::vector<Job> jobs_;
    std::vector<uint32_t> freeSlots_;
    std::vector<std::vector<uint32_t>> freeTiles_; ///< LIFO per class
    std::deque<uint32_t> waitQ_;                   ///< FIFO

    // Per-tick scratch, reused across batches.
    std::vector<PlaceReq> reqs_;
    std::vector<uint8_t> rankBuf_;
    std::vector<uint32_t> latBuf_;
    uint64_t freedThisTick_ = 0;

    // Accounting.
    uint64_t jobsDone_ = 0, placements_ = 0, migrations_ = 0;
    uint64_t crossIsa_ = 0, waited_ = 0, peakWaiting_ = 0;
    uint64_t lastTick_ = 0;
    double busyEnergyJ_ = 0;
    std::vector<uint64_t> busyTicks_; ///< per class
    std::vector<uint64_t> sojourns_;
    uint64_t traceHash_ = kFnv1aBasis;
    uint64_t placeHist_[64] = {};
    uint64_t placeCount_ = 0;
    FILE *trace_ = nullptr;
};

void
Engine::arrive(uint64_t t, uint64_t uid)
{
    uint32_t slot = allocSlot();
    Job &j = jobs_[slot];
    j.uid = uid;
    j.arrivalTick = t;
    j.tile = -1;
    j.cls = -1;
    j.bench = benchOf(uid);
    j.phase = 0;
    if (!closedLoop_ && uid + 1 < cfg_.jobs)
        pushEvent(t + interTicks(uid + 1), kArrival, uid + 1);
    reqs_.push_back(PlaceReq{slot, 0});
}

void
Engine::phaseDone(uint64_t t, uint32_t slot)
{
    Job &j = jobs_[slot];
    j.phase++;
    if (int(j.phase) < phasesPer_[j.bench]) {
        reqs_.push_back(PlaceReq{slot, 1});
        return;
    }
    sojourns_.push_back(t - j.arrivalTick);
    freeTiles_[size_t(j.cls)].push_back(uint32_t(j.tile));
    freedThisTick_++;
    jobsDone_++;
    freeSlots_.push_back(slot);
    if (closedLoop_ && nextUid_ < cfg_.jobs)
        pushEvent(t, kArrival, nextUid_++);
}

void
Engine::commit(uint64_t t, const PlaceReq &rq, const uint8_t *rank)
{
    Job &j = jobs_[rq.slot];
    const auto &classes = cluster_.classes();
    size_t nc = classes.size();

    int chosen = -1;
    for (size_t i = 0; i < nc; i++) {
        int c = rank[i];
        if (!freeTiles_[size_t(c)].empty() ||
            (rq.holding && c == j.cls)) {
            chosen = c;
            break;
        }
    }
    if (chosen < 0) {
        // All classes full and the job holds no tile: queue FIFO.
        waitQ_.push_back(rq.slot);
        waited_++;
        peakWaiting_ = std::max(peakWaiting_, uint64_t(waitQ_.size()));
        return;
    }

    int gp = starts_[j.bench] + j.phase;
    double runs = runsByGp_[size_t(gp)];
    const TileClass &tc = classes[size_t(chosen)];

    uint64_t penalty_ticks = 0;
    if (rq.holding && chosen != j.cls) {
        migrations_++;
        const TileClass &from = classes[size_t(j.cls)];
        if (from.point.vendor != tc.point.vendor)
            crossIsa_++;
        uint64_t cyc = migrationPenaltyCycles(from.point.vendor,
                                              tc.point.vendor);
        penalty_ticks = uint64_t(
            std::llround(double(cyc) / power_calib::kFreqHz * 1e9));
    }
    if (!rq.holding || chosen != j.cls) {
        if (rq.holding)
            freeTiles_[size_t(j.cls)].push_back(uint32_t(j.tile));
        std::vector<uint32_t> &stack = freeTiles_[size_t(chosen)];
        j.tile = int64_t(stack.back());
        stack.pop_back();
        j.cls = int16_t(chosen);
    }

    double dur_s = runs * double(tc.timePerRun[size_t(gp)]);
    uint64_t dur = penalty_ticks +
                   std::max<uint64_t>(
                       1, uint64_t(std::llround(dur_s * 1e9)));
    busyTicks_[size_t(chosen)] += dur;
    busyEnergyJ_ += runs * double(tc.energyPerRun[size_t(gp)]);
    pushEvent(t + dur, kPhaseDone, rq.slot);
    placements_++;

    traceHash_ = hashCombine(traceHash_, t);
    traceHash_ = hashCombine(traceHash_, j.uid);
    traceHash_ = hashCombine(traceHash_, uint64_t(gp));
    traceHash_ = hashCombine(traceHash_, uint64_t(j.tile));
    if (trace_) {
        fprintf(trace_, "%llu %llu %d %d %llu\n",
                (unsigned long long)t, (unsigned long long)j.uid, gp,
                chosen, (unsigned long long)j.tile);
    }
}

void
Engine::scoreAndCommit(uint64_t t)
{
    size_t n = reqs_.size();
    if (n == 0)
        return;
    size_t nc = cluster_.classes().size();
    rankBuf_.resize(n * nc);
    latBuf_.resize(n);

    // Rankings are pure in (tables, job fields) and write disjoint
    // slots, so scoring in parallel cannot perturb the outcome; the
    // free-tile state only moves in the serial commit below.
    auto score1 = [&](uint64_t i) {
        uint64_t t0 = wallNs();
        const PlaceReq &rq = reqs_[i];
        const Job &j = jobs_[rq.slot];
        int gp = starts_[j.bench] + j.phase;
        uint64_t rnd =
            hashCombine(polSeed_, j.uid * 131 + j.phase);
        rankClasses(cluster_, cfg_.policy, cfg_.objective, gp,
                    rq.holding ? j.cls : -1, runsByGp_[size_t(gp)],
                    rnd, rankBuf_.data() + i * nc);
        latBuf_[i] = uint32_t(std::min<uint64_t>(
            wallNs() - t0, ~uint32_t(0)));
    };
    if (n >= size_t(parBatch_)) {
        parallelFor(n, score1);
    } else {
        for (size_t i = 0; i < n; i++)
            score1(i);
    }
    src_.countLookups(rankLookups(cfg_.policy, nc) * uint64_t(n));

    for (size_t i = 0; i < n; i++) {
        uint64_t lat = std::max<uint32_t>(1, latBuf_[i]);
        placeHist_[63 - __builtin_clzll(lat)]++;
        placeCount_++;
        commit(t, reqs_[i], rankBuf_.data() + i * nc);
    }
    reqs_.clear();
}

DcsimResult
Engine::run()
{
    panic_if(cluster_.tiles() >> 32,
             "dcsim: tile ids are 32-bit; %llu cores is too many",
             (unsigned long long)cluster_.tiles());
    PerfSource::Stats s0 = src_.stats();
    cluster_.bindPerf(src_);

    nBench_ = int(specSuite().size());
    starts_.resize(size_t(nBench_));
    phasesPer_.resize(size_t(nBench_));
    runsByGp_.resize(size_t(phaseCount()));
    for (int b = 0; b < nBench_; b++) {
        starts_[size_t(b)] = phaseStartIndex(b);
        int np = int(specSuite()[size_t(b)].phases.size());
        phasesPer_[size_t(b)] = np;
        for (int p = 0; p < np; p++) {
            runsByGp_[size_t(starts_[size_t(b)] + p)] = std::max(
                1.0, phaseRunCount(b, p) * cfg_.runsScale);
        }
    }

    const auto &classes = cluster_.classes();
    freeTiles_.resize(classes.size());
    busyTicks_.assign(classes.size(), 0);
    for (size_t c = 0; c < classes.size(); c++) {
        // Push descending so the LIFO hands out low tile ids first.
        freeTiles_[c].reserve(size_t(classes[c].count));
        for (uint64_t k = classes[c].count; k-- > 0;)
            freeTiles_[c].push_back(
                uint32_t(classes[c].firstTile + k));
    }
    if (!closedLoop_ && cfg_.jobs > 0)
        sojourns_.reserve(size_t(std::min<uint64_t>(cfg_.jobs,
                                                    uint64_t(1) << 24)));

    if (!cfg_.tracePath.empty()) {
        trace_ = fopen(cfg_.tracePath.c_str(), "w");
        panic_if(!trace_, "dcsim: cannot write trace to %s",
                 cfg_.tracePath.c_str());
    }

    if (cfg_.jobs > 0) {
        if (closedLoop_) {
            uint64_t k = cfg_.inflight ? cfg_.inflight
                                       : cluster_.tiles();
            k = std::min(k, cfg_.jobs);
            for (nextUid_ = 0; nextUid_ < k; nextUid_++)
                pushEvent(0, kArrival, nextUid_);
        } else {
            pushEvent(interTicks(0), kArrival, 0);
        }
    }

    uint64_t wall0 = wallNs();
    while (!heap_.empty()) {
        uint64_t t = heap_.top().tick;
        lastTick_ = t;
        freedThisTick_ = 0;
        // Drain the whole same-tick batch in seq order: completions
        // free tiles and spawn re-placement requests, arrivals spawn
        // first placements.
        std::vector<PlaceReq> ev_reqs;
        std::swap(ev_reqs, reqs_); // reqs_ empty; reuse its storage
        ev_reqs.clear();
        while (!heap_.empty() && heap_.top().tick == t) {
            Ev ev = heap_.top();
            heap_.pop();
            std::swap(ev_reqs, reqs_);
            if (ev.kind == kPhaseDone)
                phaseDone(t, uint32_t(ev.arg));
            else
                arrive(t, ev.arg);
            std::swap(ev_reqs, reqs_);
        }
        // Freed tiles wake the longest-waiting jobs first; they are
        // committed ahead of this tick's events, so the queue stays
        // FIFO-fair. Invariant: waitQ nonempty => zero free tiles,
        // hence at most freedThisTick_ waiters can place.
        uint64_t pull = std::min<uint64_t>(freedThisTick_,
                                           uint64_t(waitQ_.size()));
        for (uint64_t k = 0; k < pull; k++) {
            reqs_.push_back(PlaceReq{waitQ_.front(), 0});
            waitQ_.pop_front();
        }
        reqs_.insert(reqs_.end(), ev_reqs.begin(), ev_reqs.end());
        scoreAndCommit(t);
    }
    uint64_t wall1 = wallNs();

    if (trace_) {
        fclose(trace_);
        trace_ = nullptr;
    }
    return finalize(wall1 - wall0, s0, src_.stats());
}

DcsimResult
Engine::finalize(uint64_t wall_ns, const PerfSource::Stats &s0,
                 const PerfSource::Stats &s1) const
{
    DcsimResult r;
    r.mix = cluster_.describe();
    r.policy = cfg_.policy;
    r.objective = cfg_.objective;
    r.seed = cfg_.seed;
    r.jobs = cfg_.jobs;
    r.rate = closedLoop_ ? 0 : cfg_.rate;
    r.runsScale = cfg_.runsScale;

    r.cores = cluster_.tiles();
    r.jobsDone = jobsDone_;
    r.placements = placements_;
    r.migrations = migrations_;
    r.crossIsaMigrations = crossIsa_;
    r.waitedJobs = waited_;
    r.peakWaiting = peakWaiting_;
    r.makespanTicks = lastTick_;
    r.traceHash = traceHash_;

    std::vector<uint64_t> s = sojourns_;
    std::sort(s.begin(), s.end());
    if (!s.empty()) {
        r.sojournP50 = s[(s.size() - 1) / 2];
        r.sojournP99 = s[std::min(s.size() - 1,
                                  (s.size() * 99) / 100)];
        r.sojournMax = s.back();
    }

    double span_s = double(lastTick_) * 1e-9;
    r.throughputVs = span_s > 0 ? double(jobsDone_) / span_s : 0;
    r.busyEnergyJ = busyEnergyJ_;
    const auto &classes = cluster_.classes();
    uint64_t busy_total = 0;
    for (size_t c = 0; c < classes.size(); c++) {
        busy_total += busyTicks_[c];
        uint64_t cap = classes[c].count * lastTick_;
        uint64_t idle = cap > busyTicks_[c] ? cap - busyTicks_[c]
                                            : 0;
        r.idleEnergyJ += classes[c].idlePowerW * double(idle) * 1e-9;
    }
    r.energyJ = r.busyEnergyJ + r.idleEnergyJ;
    r.edp = r.energyJ * span_s;
    r.utilization =
        lastTick_ > 0 && cluster_.tiles() > 0
            ? double(busy_total) /
                  (double(cluster_.tiles()) * double(lastTick_))
            : 0;

    r.cellLookups = s1.cellLookups - s0.cellLookups;
    r.slabFetches = s1.slabFetches - s0.slabFetches;
    r.slabHitRate =
        r.cellLookups == 0
            ? 1.0
            : 1.0 - double(r.slabFetches) / double(r.cellLookups);

    r.wallSeconds = double(wall_ns) * 1e-9;
    r.wallJobsPerSec =
        r.wallSeconds > 0 ? double(jobsDone_) / r.wallSeconds : 0;
    r.placeP50Ns = histPercentile(placeHist_, placeCount_, 0.50);
    r.placeP99Ns = histPercentile(placeHist_, placeCount_, 0.99);
    r.remoteCalls = s1.remoteCalls - s0.remoteCalls;
    r.fetchSeconds = double(s1.fetchNs - s0.fetchNs) * 1e-9;
    return r;
}

} // namespace

DcsimResult
runDcsim(const DcsimConfig &cfg, PerfSource &src, Cluster &cluster)
{
    return Engine(cfg, src, cluster).run();
}

DcsimResult
runDcsim(const DcsimConfig &cfg, PerfSource &src)
{
    Cluster cluster = Cluster::fromMix(cfg.mix, cfg.cores);
    return runDcsim(cfg, src, cluster);
}

DcsimComparison
runWithBaseline(const DcsimConfig &cfg, PerfSource &src)
{
    DcsimComparison c;
    Cluster cluster = Cluster::fromMix(cfg.mix, cfg.cores);
    c.run = runDcsim(cfg, src, cluster);

    // Same job stream and objective on the iso-area homogeneous
    // grid, scheduled homogeneous-best (there is only one class).
    DcsimConfig bcfg = cfg;
    bcfg.policy = DcPolicy::HomogBest;
    bcfg.tracePath.clear();
    Cluster base = cluster.homogeneousBaseline();
    bcfg.cores = base.tiles();
    c.baseline = runDcsim(bcfg, src, base);

    c.throughputX = c.baseline.throughputVs > 0
                        ? c.run.throughputVs / c.baseline.throughputVs
                        : 0;
    c.edpX = c.run.edp > 0 ? c.baseline.edp / c.run.edp : 0;
    return c;
}

namespace
{

void
addU64(std::vector<std::string> &f, const char *k, uint64_t v)
{
    char buf[96];
    snprintf(buf, sizeof(buf), "\"%s\": %llu", k,
             (unsigned long long)v);
    f.push_back(buf);
}

void
addF64(std::vector<std::string> &f, const char *k, double v)
{
    char buf[96];
    snprintf(buf, sizeof(buf), "\"%s\": %.17g", k, v);
    f.push_back(buf);
}

void
addStr(std::vector<std::string> &f, const char *k,
       const std::string &v)
{
    f.push_back("\"" + std::string(k) + "\": \"" + v + "\"");
}

std::string
joinObject(const std::vector<std::string> &fields, int indent)
{
    std::string pad(size_t(indent), ' ');
    std::string s = "{\n";
    for (size_t i = 0; i < fields.size(); i++) {
        s += pad + "  " + fields[i];
        s += i + 1 < fields.size() ? ",\n" : "\n";
    }
    s += pad + "}";
    return s;
}

} // namespace

std::string
dcsimJson(const DcsimResult &r, bool host_stats, int indent)
{
    std::vector<std::string> f;
    addU64(f, "cores", r.cores);
    addStr(f, "mix", r.mix);
    addU64(f, "jobs", r.jobs);
    addStr(f, "policy", dcPolicyName(r.policy));
    addStr(f, "objective", dcObjectiveName(r.objective));
    addU64(f, "seed", r.seed);
    addF64(f, "rate_jobs_per_vsec", r.rate);
    addF64(f, "runs_scale", r.runsScale);
    addU64(f, "jobs_done", r.jobsDone);
    addU64(f, "placements", r.placements);
    addU64(f, "migrations", r.migrations);
    addU64(f, "cross_isa_migrations", r.crossIsaMigrations);
    addU64(f, "waited_jobs", r.waitedJobs);
    addU64(f, "peak_waiting", r.peakWaiting);
    addU64(f, "makespan_ns", r.makespanTicks);
    addF64(f, "throughput_jobs_per_vsec", r.throughputVs);
    addU64(f, "sojourn_p50_ns", r.sojournP50);
    addU64(f, "sojourn_p99_ns", r.sojournP99);
    addU64(f, "sojourn_max_ns", r.sojournMax);
    addF64(f, "busy_energy_j", r.busyEnergyJ);
    addF64(f, "idle_energy_j", r.idleEnergyJ);
    addF64(f, "energy_j", r.energyJ);
    addF64(f, "edp_js", r.edp);
    addF64(f, "utilization", r.utilization);
    addU64(f, "cell_lookups", r.cellLookups);
    {
        char buf[64];
        snprintf(buf, sizeof(buf),
                 "\"trace_hash\": \"0x%016llx\"",
                 (unsigned long long)r.traceHash);
        f.push_back(buf);
    }
    if (host_stats) {
        // Warm-state metrics: a reused PerfSource fetches fewer
        // slabs, so these live with the wall-clock block rather
        // than the deterministic surface.
        addU64(f, "slab_fetches", r.slabFetches);
        addF64(f, "slab_hit_rate", r.slabHitRate);
        addF64(f, "wall_seconds", r.wallSeconds);
        addF64(f, "wall_jobs_per_sec", r.wallJobsPerSec);
        addU64(f, "place_p50_ns", r.placeP50Ns);
        addU64(f, "place_p99_ns", r.placeP99Ns);
        addU64(f, "remote_calls", r.remoteCalls);
        addF64(f, "fetch_seconds", r.fetchSeconds);
    }
    return joinObject(f, indent);
}

std::string
dcsimComparisonJson(const DcsimComparison &c, bool host_stats)
{
    std::vector<std::string> vs;
    addF64(vs, "throughput_x", c.throughputX);
    addF64(vs, "edp_x", c.edpX);

    std::string s = "{\n";
    s += "  \"run\": " + dcsimJson(c.run, host_stats, 2) + ",\n";
    s += "  \"baseline\": " + dcsimJson(c.baseline, host_stats, 2) +
         ",\n";
    s += "  \"vs\": " + joinObject(vs, 2) + "\n";
    s += "}";
    return s;
}

} // namespace cisa
