#include "dcsim/policy.hh"

#include <cstring>

#include "common/hash.hh"
#include "common/logging.hh"
#include "migration/cost.hh"
#include "power/calib.hh"

namespace cisa
{

bool
parseDcPolicy(const std::string &name, DcPolicy *out)
{
    if (name == "random")
        *out = DcPolicy::Random;
    else if (name == "homog")
        *out = DcPolicy::HomogBest;
    else if (name == "affinity")
        *out = DcPolicy::Affinity;
    else if (name == "migration")
        *out = DcPolicy::MigrationAware;
    else
        return false;
    return true;
}

const char *
dcPolicyName(DcPolicy p)
{
    switch (p) {
      case DcPolicy::Random:         return "random";
      case DcPolicy::HomogBest:      return "homog";
      case DcPolicy::Affinity:       return "affinity";
      case DcPolicy::MigrationAware: return "migration";
    }
    return "?";
}

bool
parseDcObjective(const std::string &name, DcObjective *out)
{
    if (name == "time")
        *out = DcObjective::Time;
    else if (name == "edp")
        *out = DcObjective::Edp;
    else
        return false;
    return true;
}

const char *
dcObjectiveName(DcObjective o)
{
    return o == DcObjective::Time ? "time" : "edp";
}

void
rankClasses(const Cluster &cluster, DcPolicy policy, DcObjective obj,
            int gp, int cur_class, double runs, uint64_t rnd,
            uint8_t *out)
{
    const auto &cls = cluster.classes();
    size_t n = cls.size();
    panic_if(n > size_t(kMaxTileClasses), "too many tile classes");

    double key[kMaxTileClasses];
    for (size_t c = 0; c < n; c++) {
        const TileClass &tc = cls[c];
        switch (policy) {
          case DcPolicy::Random:
            // Independent uniform keys: sorting them is a seeded
            // shuffle, ties (measure zero) break by index.
            key[c] = double(splitmix64(rnd + c)) * 0x1p-64;
            break;
          case DcPolicy::HomogBest:
            key[c] = obj == DcObjective::Time ? tc.meanTime
                                              : tc.meanTimeEnergy;
            break;
          case DcPolicy::Affinity: {
            double t = double(tc.timePerRun[size_t(gp)]);
            key[c] =
                obj == DcObjective::Time
                    ? t
                    : t * double(tc.energyPerRun[size_t(gp)]);
            break;
          }
          case DcPolicy::MigrationAware: {
            double t =
                runs * double(tc.timePerRun[size_t(gp)]);
            double e =
                runs * double(tc.energyPerRun[size_t(gp)]);
            if (cur_class >= 0 && size_t(cur_class) != c) {
                double mig =
                    double(migrationPenaltyCycles(
                        cls[size_t(cur_class)].point.vendor,
                        tc.point.vendor)) /
                    power_calib::kFreqHz;
                t += mig;
            }
            key[c] = obj == DcObjective::Time ? t : t * e;
            break;
          }
        }
        out[c] = uint8_t(c);
    }

    // Insertion sort (n <= 32): ascending key, ties by class index
    // (stable over the pre-sorted identity order).
    for (size_t i = 1; i < n; i++) {
        uint8_t v = out[i];
        double kv = key[v];
        size_t j = i;
        while (j > 0 && key[out[j - 1]] > kv) {
            out[j] = out[j - 1];
            j--;
        }
        out[j] = v;
    }
}

uint64_t
rankLookups(DcPolicy policy, size_t n_classes)
{
    switch (policy) {
      case DcPolicy::Affinity:
      case DcPolicy::MigrationAware:
        return uint64_t(n_classes);
      default:
        return 0;
    }
}

} // namespace cisa
