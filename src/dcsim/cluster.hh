/**
 * @file
 * The cluster model: a grid of thousands-to-millions of
 * heterogeneous core tiles, each an instance of one of a few tile
 * classes (DSE design points). A mix spec like
 * "big=1,x86=1,alpha=1,thumb=1" names preset design points (or raw
 * "c<isa>u<uarch>" composite coordinates) with integer weights;
 * tiles are distributed over the classes by largest remainder, in a
 * blocked layout (class 0 owns tile ids [0, n0), class 1 the next
 * block, ...), so tile -> class is two comparisons and the whole
 * 100k-core grid costs bytes per tile, not structs.
 *
 * bindPerf() pulls each class's slab through a PerfSource and keeps
 * the class's own microarchitecture row as dense per-global-phase
 * time/energy arrays — the only per-placement data the policies
 * touch. Solo (uncontended) numbers are used: datacenter tiles each
 * own their cache slice, unlike the 4-way shared-L2 contention the
 * Mp columns model. Power accounting: busy energy comes from the
 * slab's energyPerRun (the src/power model), idle tiles draw
 * CISA_DCSIM_IDLE_PCT percent of their structural peak power.
 */

#ifndef CISA_DCSIM_CLUSTER_HH
#define CISA_DCSIM_CLUSTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "dcsim/perfsource.hh"
#include "explore/designpoint.hh"

namespace cisa
{

/** One tile class: a design point plus its share of the grid. */
struct TileClass
{
    std::string label;  ///< preset name or raw spec
    DesignPoint point;
    uint64_t count = 0; ///< tiles of this class
    uint64_t firstTile = 0;

    // Bound by Cluster::bindPerf(), indexed by global phase.
    std::vector<float> timePerRun;   ///< seconds, solo
    std::vector<float> energyPerRun; ///< joules
    double meanTime = 0;       ///< mean over phases (homog ranking)
    double meanTimeEnergy = 0; ///< mean t*e    (homog EDP ranking)
    double idlePowerW = 0;     ///< unoccupied draw
    double areaMm2 = 0;        ///< one tile
};

class Cluster
{
  public:
    /** Build @p cores tiles from @p mix_spec (see file comment).
     * Every weighted class gets at least one tile; panics on a
     * malformed spec or cores < classes. */
    static Cluster fromMix(const std::string &mix_spec,
                           uint64_t cores);

    /**
     * The homogeneous comparison cluster for this one: every tile
     * the plain-x86-64 mid-range OoO preset ("x86"), sized to the
     * same total silicon area (at least 1 tile) — the paper's
     * iso-budget homogeneous baseline, scaled out.
     */
    Cluster homogeneousBaseline() const;

    /** Fetch each class's slab via @p src and bind the dense
     * per-phase tables. Idempotent. */
    void bindPerf(PerfSource &src);

    const std::vector<TileClass> &classes() const { return classes_; }
    uint64_t tiles() const { return tiles_; }
    double totalAreaMm2() const;

    /** Class owning tile @p tile (blocked layout). */
    uint32_t
    classOf(uint64_t tile) const
    {
        uint32_t c = 0;
        while (c + 1 < classes_.size() &&
               tile >= classes_[c + 1].firstTile)
            c++;
        return c;
    }

    /** "label=count,label=count,..." summary. */
    std::string describe() const;

  private:
    std::vector<TileClass> classes_;
    uint64_t tiles_ = 0;
    bool bound_ = false;
};

} // namespace cisa

#endif // CISA_DCSIM_CLUSTER_HH
