#include "decoder/decodemodel.hh"

#include "common/logging.hh"
#include "decoder/calib.hh"
#include "decoder/gates.hh"

namespace cisa
{

using namespace decoder_calib;

HwCost &
HwCost::operator+=(const HwCost &o)
{
    gates += o.gates;
    areaMm2 += o.areaMm2;
    peakPowerW += o.peakPowerW;
    return *this;
}

namespace
{

/** Convert gates to cost with a power-activity factor. */
HwCost
cost(double g, double power_factor = 1.0)
{
    HwCost c;
    c.gates = g;
    c.areaMm2 = g * kAreaPerGate;
    c.peakPowerW = g * kPowerPerGate * power_factor;
    return c;
}

} // namespace

HwCost
DecodeEngine::decodeStage() const
{
    HwCost c = decoders;
    c += msrom;
    return c;
}

HwCost
DecodeEngine::engine() const
{
    HwCost c = decodeStage();
    c += macroQueue;
    c += uopQueue;
    return c;
}

HwCost
DecodeEngine::total() const
{
    HwCost c = engine();
    c += ild;
    return c;
}

DecodeEngine
DecodeEngine::build(const FeatureSet &fs, const MicroArchConfig &ua,
                    bool fixed_length)
{
    DecodeEngine e;

    bool rexbc = fs.regDepth > 16;
    bool pred = fs.fullPredication();
    bool cisc = fs.complexity == Complexity::X86;

    // ---- Instruction-length decoder (Madduri-style, 16 byte
    // positions decoded in parallel) ----
    if (!fixed_length) {
        // Per-position: prefix/opcode decode, speculative length
        // calculation, begin/end marking.
        double len_inputs = 14 + (rexbc ? 1 : 0) + (pred ? 1 : 0);
        double per_pos = gates::pla(1200, 80) +
                         11 * gates::comparator(8) +
                         gates::mux(int(len_inputs), 6) +
                         gates::pla(60, 8) + gates::latch(24);
        // New escape-byte comparators and wider select signals for
        // the REXBC / predicate prefixes.
        if (rexbc)
            per_pos += 6;
        if (pred)
            per_pos += 6;
        // Shared: byte-rotate aligners, prefetch buffer, length
        // control select, valid-begin marking.
        double shared = 2 * gates::mux(32, 64) + gates::sram(1024) +
                        gates::pla(256, 16) + 16 * gates::mux(16, 6);
        e.ild = cost(16 * per_pos + shared, 0.85);
    } else {
        // One-step decoding: a trivial aligner.
        e.ild = cost(gates::latch(128), 0.85);
    }

    // ---- Decoders ----
    // Shared operand-extraction/steering datapath plus the 1:1
    // simple decoders; full-x86 adds the 1:4 complex decoder and the
    // microsequencing ROM; microx86 swaps the complex decoder for
    // one more simple decoder and forgoes the MSROM (Section V.B).
    double simple = gates::pla(700, 90);
    double shared_stage = 38000;
    int n_simple = ua.simpleDecoders + (cisc ? 0 : 1);
    double dec = shared_stage + n_simple * simple;
    HwCost dc = cost(dec);
    if (cisc)
        dc += cost(6800, 0.85); // 1:4 complex decoder
    e.decoders = dc;
    if (cisc)
        e.msrom = cost(3500, kRomPowerFactor);

    // ---- Queues ----
    // The macro-op queue widens by 2 bytes when the new prefixes
    // exist; the micro-op encoding widens by 2 bytes for the extra
    // register/predicate specifiers (Section V.B).
    int macro_bytes = kMacroEntryBytes + ((rexbc || pred) ? 2 : 0);
    int uop_bits = kUopBits + ((rexbc || pred) ? 8 : 0);
    e.macroQueue =
        cost(gates::latch(kMacroQueueEntries * macro_bytes * 8) *
                 1.0,
             0.60);
    // The micro-op queue plus the decode/uop datapath it feeds
    // (dominant, mostly wiring and staging; see DESIGN.md).
    double uopq = gates::latch(kUopQueueEntries * uop_bits) +
                  540000 + (uop_bits - kUopBits) * 40;
    e.uopQueue = cost(uopq, 0.50);

    return e;
}

} // namespace cisa
