/**
 * @file
 * Calibration constants of the decoder model, with the paper-reported
 * numbers each one targets (Sections III and V):
 *
 * - microx86 decode stage (no 1:4 decoder, no MSROM): about -9.8%
 *   peak power and -15.1% area vs the full x86 decode stage.
 * - microx86-32 full decode engine: -0.66% power, -1.12% area vs the
 *   x86-64 decode engine (queues dominate, so the delta shrinks).
 * - superset decode engine: +0.3% power, +0.46% area vs x86-64.
 * - superset ILD modifications: +0.87% peak power, +0.65% area of
 *   the ILD itself.
 *
 * The structural model is genuinely structural (gate counts per
 * component); these constants set technology scale and activity
 * weighting.
 */

#ifndef CISA_DECODER_CALIB_HH
#define CISA_DECODER_CALIB_HH

namespace cisa
{
namespace decoder_calib
{

/** Area per equivalent gate (mm^2); 22 nm-class standard cells. */
constexpr double kAreaPerGate = 0.42e-6;

/** Peak switching power per gate at ~3 GHz (W). */
constexpr double kPowerPerGate = 1.9e-6;

/** Activity-derating of dense ROM/SRAM structures vs random logic. */
constexpr double kRomPowerFactor = 0.30;
constexpr double kSramPowerFactor = 0.45;

/** Number of parallel ILD decode subunits (Madduri et al.). */
constexpr int kIldSubunits = 8;

/** Macro-op queue entries / micro-op queue entries. */
constexpr int kMacroQueueEntries = 20;
constexpr int kUopQueueEntries = 28;

/** Baseline bytes per macro-op queue entry (x86 limit + marks). */
constexpr int kMacroEntryBytes = 16;

/** Micro-op encoding bits (baseline). */
constexpr int kUopBits = 72;

/** MSROM geometry. */
constexpr int kMsromEntries = 3072;

} // namespace decoder_calib
} // namespace cisa

#endif // CISA_DECODER_CALIB_HH
