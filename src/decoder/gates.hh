/**
 * @file
 * Gate-level building blocks for the structural decoder model: gate
 * counts for comparators, mux trees, latches and ROMs, plus the
 * area/power conversion constants. These stand in for the Synopsys
 * Design Compiler synthesis runs of Section V; all constants live in
 * calib.hh so the calibration targets stay auditable.
 */

#ifndef CISA_DECODER_GATES_HH
#define CISA_DECODER_GATES_HH

namespace cisa
{

/** Equivalent gate counts for standard structures. */
namespace gates
{

/** N-bit equality comparator. */
inline double
comparator(int bits)
{
    return 4.5 * bits;
}

/** N-to-1 multiplexer of a given payload width. */
inline double
mux(int inputs, int bits)
{
    return 2.5 * inputs * bits;
}

/** Flip-flop storage. */
inline double
latch(int bits)
{
    return 6.0 * bits;
}

/** ROM storage (dense, low gate-equivalent per bit). */
inline double
rom(int entries, int bits)
{
    return 0.28 * entries * bits;
}

/** SRAM storage (per bit, including peripheral overhead). */
inline double
sram(int bits)
{
    return 1.1 * bits;
}

/** Random logic blob (PLA-style decode logic). */
inline double
pla(int product_terms, int outputs)
{
    return 3.2 * product_terms + 1.8 * outputs;
}

} // namespace gates

} // namespace cisa

#endif // CISA_DECODER_GATES_HH
