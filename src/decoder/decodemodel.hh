/**
 * @file
 * Structural model of the fetch/decode engine (Section V, Figure 4):
 * the parallel instruction-length decoder (instruction decode
 * subunits, speculative length calculators, length-control select
 * and valid-begin marking), the simple 1:1 and complex 1:4
 * instruction decoders with the microsequencing ROM, and the
 * macro-op/micro-op queues whose widths grow with the REXBC and
 * predicate prefixes. Produces per-component gate counts converted
 * to area/peak power; the power model consumes the totals and the
 * benches reproduce the paper's reported deltas.
 */

#ifndef CISA_DECODER_DECODEMODEL_HH
#define CISA_DECODER_DECODEMODEL_HH

#include "isa/features.hh"
#include "uarch/uconfig.hh"

namespace cisa
{

/** Area/power of one component. */
struct HwCost
{
    double gates = 0.0;
    double areaMm2 = 0.0;
    double peakPowerW = 0.0;

    HwCost &operator+=(const HwCost &o);
};

/** Cost breakdown of a decode engine instance. */
struct DecodeEngine
{
    HwCost ild;        ///< instruction-length decoder
    HwCost decoders;   ///< simple 1:1 decoders (+ the 1:4 if CISC)
    HwCost msrom;      ///< microsequencing ROM (CISC only)
    HwCost macroQueue; ///< macro-op queue
    HwCost uopQueue;   ///< micro-op queue

    /** Decoders + MSROM (Section III's "decode stage" scope). */
    HwCost decodeStage() const;

    /** Everything except the ILD (Section V's "decoder" scope). */
    HwCost engine() const;

    /** Everything including the ILD. */
    HwCost total() const;

    /**
     * Build for a feature set and decoder configuration.
     * @param fixed_length vendor ISAs with one-step decoding skip
     *        the ILD entirely (Alpha/Thumb models)
     */
    static DecodeEngine build(const FeatureSet &fs,
                              const MicroArchConfig &ua,
                              bool fixed_length = false);
};

} // namespace cisa

#endif // CISA_DECODER_DECODEMODEL_HH
