#include "core/cisa.hh"

#include "common/env.hh"
#include "common/logging.hh"

namespace cisa
{

const char *
versionString()
{
    return "cisa 1.0.0 (composite-ISA cores, HPCA'19 reproduction)";
}

CompiledRun
compileAndRun(const IrModule &module, const FeatureSet &isa,
              const CompileOptions *options)
{
    CompileOptions opts =
        options ? *options : CompileOptions::fromEnv();
    opts.target = isa;

    CompiledRun out;
    CompileReport rep;
    out.program = compile(module, opts, &rep, &out.transformedIr);
    MemImage img = MemImage::build(out.transformedIr,
                                   isa.widthBits());
    out.result = executeMachine(out.program, img, 1ULL << 31,
                                &out.trace, 1ULL << 21);
    return out;
}

PhaseRun
evaluatePhase(int phase_idx, const FeatureSet &isa,
              const MicroArchConfig &uarch, uint64_t timed_uops,
              const RunEnv &env)
{
    const IrModule &mod = phaseModule(phase_idx);

    CompileOptions opts = CompileOptions::fromEnv();
    opts.target = isa;
    CompileReport rep;
    IrModule ir;
    MachineProgram prog = compile(mod, opts, &rep, &ir);

    MemImage img = MemImage::build(ir, isa.widthBits());
    Trace trace;
    executeMachine(prog, img, 1ULL << 31, &trace, 1ULL << 21);
    panic_if(trace.truncated, "phase %d trace truncated", phase_idx);

    uint64_t timed = timed_uops ? timed_uops : simUopBudget();
    uint64_t warm = simWarmupUops();
    CoreConfig cc{isa, uarch};
    PerfResult perf = simulateCore(cc, trace, timed, warm, env);

    PhaseRun run;
    run.code = prog.stats;
    run.passes = rep;
    run.mix = trace.dyn;
    run.perf = perf;
    run.energy = coreEnergy(cc, perf.stats);
    run.areaMm2 = coreAreaMm2(cc);
    run.peakPowerW = corePeakPowerW(cc);
    double scale =
        double(trace.ops.size()) / double(perf.stats.macroOps);
    run.timePerRunSec = secondsOf(perf.cycles) * scale;
    run.energyPerRunJ = run.energy.total() * scale;
    return run;
}

} // namespace cisa
