/**
 * @file
 * The public facade of the composite-ISA library.
 *
 * A downstream user typically wants one of three things:
 *
 * 1. Compile and run a workload phase on one composite core and get
 *    performance, energy, and instruction-mix numbers
 *    (evaluatePhase).
 * 2. Search for an optimal heterogeneous multicore under a budget
 *    (searchDesign, re-exported from explore/).
 * 3. Study migration between feature sets (measureDowngrade,
 *    re-exported from migration/).
 *
 * Everything else (the IR, the compiler passes, the timing engine)
 * is available through the per-subsystem headers this one includes.
 */

#ifndef CISA_CORE_CISA_HH
#define CISA_CORE_CISA_HH

#include "compiler/compiler.hh"
#include "compiler/exec.hh"
#include "compiler/interp.hh"
#include "explore/campaign.hh"
#include "explore/schedule.hh"
#include "explore/search.hh"
#include "isa/features.hh"
#include "isa/vendor.hh"
#include "migration/cost.hh"
#include "migration/translate.hh"
#include "power/energy.hh"
#include "power/power.hh"
#include "uarch/core.hh"
#include "workloads/profiles.hh"
#include "workloads/simpoint.hh"
#include "workloads/synth.hh"

namespace cisa
{

/** Everything one (phase, core) evaluation produces. */
struct PhaseRun
{
    CodeStats code;          ///< static code properties
    CompileReport passes;    ///< what the optimizer did
    DynStats mix;            ///< dynamic instruction mix
    PerfResult perf;         ///< timing
    EnergyBreakdown energy;  ///< energy by stage
    double areaMm2 = 0;
    double peakPowerW = 0;
    double timePerRunSec = 0;
    double energyPerRunJ = 0;
};

/**
 * Compile phase @p phase_idx for @p isa, execute it functionally,
 * and simulate it on @p uarch.
 *
 * @param timed_uops 0 selects the CISA_SIM_UOPS default
 */
PhaseRun evaluatePhase(int phase_idx, const FeatureSet &isa,
                       const MicroArchConfig &uarch,
                       uint64_t timed_uops = 0,
                       const RunEnv &env = {});

/**
 * Compile an arbitrary module and return program + trace + result;
 * the building block behind evaluatePhase for custom workloads.
 */
struct CompiledRun
{
    MachineProgram program;
    IrModule transformedIr;
    Trace trace;
    ExecResult result;
};

CompiledRun compileAndRun(const IrModule &module,
                          const FeatureSet &isa,
                          const CompileOptions *options = nullptr);

/** Library version string. */
const char *versionString();

} // namespace cisa

#endif // CISA_CORE_CISA_HH
