/**
 * @file
 * Unit tests for the variable-length encoding model: prefix costs of
 * REXBC registers and predication, displacement/immediate sizing,
 * and the vendor fixed-length encoders.
 */

#include <gtest/gtest.h>

#include "isa/encoding.hh"

namespace cisa
{
namespace
{

EncInfo
basicAdd()
{
    EncInfo e;
    e.op = Op::Add;
    e.form = MemForm::None;
    e.maxGpr = 3;
    return e;
}

TEST(Encoding, BaselineAluLength)
{
    // add reg, reg with legacy registers: opcode + modrm.
    EXPECT_EQ(x86EncodedLength(basicAdd()), 2);
}

TEST(Encoding, RexAddsOneByte)
{
    EncInfo e = basicAdd();
    int base = x86EncodedLength(e);
    e.w64 = true;
    EXPECT_EQ(x86EncodedLength(e), base + 1);
    e.w64 = false;
    e.maxGpr = 12;
    EXPECT_EQ(x86EncodedLength(e), base + 1);
}

TEST(Encoding, RexbcAddsThreeBytes)
{
    // REXBC escape+payload (2) plus the REX byte it extends.
    EncInfo e = basicAdd();
    int base = x86EncodedLength(e);
    e.maxGpr = 32;
    EXPECT_EQ(x86EncodedLength(e), base + 3);
}

TEST(Encoding, PredicationAddsTwoBytes)
{
    EncInfo e = basicAdd();
    int base = x86EncodedLength(e);
    e.predicated = true;
    EXPECT_EQ(x86EncodedLength(e), base + 2);
}

TEST(Encoding, DisplacementSizing)
{
    EXPECT_EQ(dispBytesFor(0), 0);
    EXPECT_EQ(dispBytesFor(100), 1);
    EXPECT_EQ(dispBytesFor(-100), 1);
    EXPECT_EQ(dispBytesFor(200), 4);
    EXPECT_EQ(dispBytesFor(-200), 4);
}

TEST(Encoding, ImmediateSizing)
{
    EXPECT_EQ(immBytesFor(0, false), 0);
    EXPECT_EQ(immBytesFor(100, false), 1);
    EXPECT_EQ(immBytesFor(5000, false), 4);
    EXPECT_EQ(immBytesFor(1LL << 40, true), 8);
}

TEST(Encoding, MemoryOperandCosts)
{
    EncInfo e = basicAdd();
    e.form = MemForm::LoadOp;
    e.dispBytes = 1;
    int with_disp8 = x86EncodedLength(e);
    e.indexReg = true;
    EXPECT_EQ(x86EncodedLength(e), with_disp8 + 1); // SIB byte
    e.dispBytes = 4;
    EXPECT_EQ(x86EncodedLength(e), with_disp8 + 4);
}

TEST(Encoding, SseOpcodesAreLonger)
{
    EncInfo e;
    e.op = Op::FAdd;
    e.maxGpr = -1;
    EXPECT_GE(x86EncodedLength(e), 4); // prefix + 0f + opcode + modrm
}

TEST(Encoding, WithinSupersetLimit)
{
    // Worst case: predicated REXBC RMW with disp32 + imm32.
    EncInfo e;
    e.op = Op::Add;
    e.form = MemForm::LoadOpStore;
    e.w64 = true;
    e.maxGpr = 63;
    e.predicated = true;
    e.dispBytes = 4;
    e.immBytes = 4;
    e.indexReg = true;
    int len = x86EncodedLength(e);
    EXPECT_LE(len, kSupersetMaxLen);
    EXPECT_GT(len, kX86MaxLen); // genuinely uses the extension room
}

TEST(Encoding, VendorFixedLengths)
{
    EncInfo e = basicAdd();
    EXPECT_EQ(alphaEncodedLength(e), 4);
    EXPECT_EQ(thumbEncodedLength(e), 2); // compact form
    e.maxGpr = 12;
    EXPECT_EQ(thumbEncodedLength(e), 4); // high register
    e.maxGpr = 3;
    e.immBytes = 4;
    EXPECT_EQ(thumbEncodedLength(e), 4); // wide immediate
}

} // namespace
} // namespace cisa
