/**
 * @file
 * Tests of the public facade (core/cisa.hh): evaluatePhase and
 * compileAndRun must compose the subsystems coherently, and their
 * outputs must satisfy cross-layer consistency properties (work
 * scaling, energy accounting, area/power agreement with the power
 * model).
 */

#include <gtest/gtest.h>

#include "core/cisa.hh"

namespace cisa
{
namespace
{

MicroArchConfig
midCore()
{
    for (const auto &c : MicroArchConfig::enumerate()) {
        if (c.outOfOrder && c.width == 2 &&
            c.bpred == BpKind::Tournament && c.iqSize == 64 &&
            c.uopCache && c.l1iKB == 32 && c.lsqSize == 16) {
            return c;
        }
    }
    return MicroArchConfig{};
}

TEST(Core, Version)
{
    EXPECT_NE(std::string(versionString()).find("cisa"),
              std::string::npos);
}

TEST(Core, EvaluatePhaseIsConsistent)
{
    PhaseRun r = evaluatePhase(0, FeatureSet::x86_64(), midCore(),
                               3000);
    EXPECT_GT(r.perf.ipc, 0.05);
    EXPECT_GT(r.code.instrs, 50u);
    EXPECT_GT(r.mix.uops, r.mix.macroOps * 99 / 100);
    EXPECT_GT(r.timePerRunSec, 0.0);
    EXPECT_GT(r.energyPerRunJ, 0.0);
    // Facade numbers agree with the power model.
    CoreConfig cc{FeatureSet::x86_64(), midCore()};
    EXPECT_DOUBLE_EQ(r.areaMm2, coreAreaMm2(cc));
    EXPECT_DOUBLE_EQ(r.peakPowerW, corePeakPowerW(cc));
    // Energy breakdown sums to total.
    const EnergyBreakdown &e = r.energy;
    EXPECT_NEAR(e.total(),
                e.fetch + e.bpred + e.decode + e.rename +
                    e.scheduler + e.regfile + e.fu + e.lsq +
                    e.leakage,
                1e-15);
}

TEST(Core, CompileAndRunMatchesInterpreter)
{
    const IrModule &m = phaseModule(3);
    CompiledRun run = compileAndRun(m, FeatureSet::superset());
    MemImage img = MemImage::build(run.transformedIr, 64);
    ExecResult ref = interpret(run.transformedIr, img);
    EXPECT_EQ(run.result.intChecksum, ref.intChecksum);
    EXPECT_EQ(run.result.retVal, ref.retVal);
}

TEST(Core, MoreTimedUopsMoreCycles)
{
    PhaseRun a = evaluatePhase(0, FeatureSet::x86_64(), midCore(),
                               2000);
    PhaseRun b = evaluatePhase(0, FeatureSet::x86_64(), midCore(),
                               8000);
    EXPECT_GT(b.perf.cycles, a.perf.cycles);
    // Per-run time is an intensive quantity: roughly budget-free.
    EXPECT_NEAR(b.timePerRunSec / a.timePerRunSec, 1.0, 0.35);
}

TEST(Core, ContentionSlowsARun)
{
    RunEnv alone;
    RunEnv shared;
    shared.l2Share = 0.25;
    shared.memContention = 1.3;
    // lbm: big footprint, feels the L2 squeeze.
    int lbm0 = 0, at = 0;
    for (const auto &b : specSuite()) {
        if (b.name == "lbm")
            lbm0 = at;
        at += int(b.phases.size());
    }
    PhaseRun a = evaluatePhase(lbm0, FeatureSet::x86_64(),
                               midCore(), 4000, alone);
    PhaseRun s = evaluatePhase(lbm0, FeatureSet::x86_64(),
                               midCore(), 4000, shared);
    EXPECT_GE(s.timePerRunSec, a.timePerRunSec);
}

TEST(Core, AllFeatureSetsEvaluate)
{
    // Smoke property: every viable feature set flows through the
    // whole stack on a real phase.
    for (int i = 0; i < FeatureSet::count(); i += 5) {
        PhaseRun r = evaluatePhase(10, FeatureSet::byId(i),
                                   midCore(), 1500);
        EXPECT_GT(r.perf.ipc, 0.02) << FeatureSet::byId(i).name();
        EXPECT_GT(r.energyPerRunJ, 0.0);
    }
}

} // namespace
} // namespace cisa
