/**
 * @file
 * Tests of the feature-downgrade binary translator: downgraded
 * programs must be semantically identical to the originals (the RCB
 * and scratch traffic is architecturally invisible), must decode as
 * legal code for the constrained core, and must show the paper's
 * cost ordering (deeper register-depth downgrades hurt more; the
 * x86-to-microx86 addressing transform is cheap).
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "compiler/exec.hh"
#include "compiler/interp.hh"
#include "migration/cost.hh"
#include "migration/translate.hh"
#include "workloads/profiles.hh"
#include "workloads/synth.hh"

namespace cisa
{
namespace
{

IrModule
smallModule(const char *bench, bool vectorize_target = false)
{
    int bi = benchIndex(bench);
    PhaseProfile p = specSuite()[size_t(bi)].phases[0];
    p.targetDynOps = 15000;
    p.outerTrip = 2;
    if (!vectorize_target)
        p.vecLoops = 0;
    return buildPhase(p);
}

struct DownCase
{
    const char *bench;
    const char *code;
    const char *core;
};

class DowngradeEquiv : public ::testing::TestWithParam<DownCase>
{};

TEST_P(DowngradeEquiv, SemanticsPreserved)
{
    DownCase c = GetParam();
    FeatureSet code = FeatureSet::parse(c.code);
    FeatureSet core = FeatureSet::parse(c.core);
    IrModule m = smallModule(c.bench);

    CompileOptions opts;
    opts.target = code;
    opts.enableVectorize = false; // SIMD can't downgrade to microx86
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);

    MemImage img1 = MemImage::build(ir, code.widthBits());
    ExecResult ref = executeMachine(prog, img1);
    ASSERT_FALSE(ref.ranOut);

    MemImage img2 = MemImage::build(ir, code.widthBits());
    DowngradeStats st;
    MachineProgram down =
        downgradeProgram(prog, core, img2.stackBase, &st);
    ExecResult got = executeMachine(down, img2);
    ASSERT_FALSE(got.ranOut);

    EXPECT_EQ(got.retVal, ref.retVal);
    EXPECT_EQ(got.intChecksum, ref.intChecksum);
    EXPECT_DOUBLE_EQ(got.fpSum, ref.fpSum);
    // The translation is not a no-op.
    EXPECT_GT(st.depthRewrites + st.unfoldedOps +
                  st.reverseIfConverted,
              0);
    // Translated code only uses features of the constrained core.
    for (const auto &f : down.funcs) {
        for (const auto &b : f.blocks) {
            for (const auto &i : b.instrs) {
                if (core.complexity == Complexity::MicroX86)
                    EXPECT_EQ(i.uops, 1) << i.str();
                if (!core.fullPredication())
                    EXPECT_LT(i.predReg, 0) << i.str();
                if (!i.fp) {
                    EXPECT_LT(i.dst, core.regDepth) << i.str();
                    EXPECT_LT(i.src1, core.regDepth) << i.str();
                    EXPECT_LT(i.src2, core.regDepth) << i.str();
                }
                EXPECT_LT(i.mem.base, int(core.regDepth));
                EXPECT_LT(i.mem.index, int(core.regDepth));
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DowngradeEquiv,
    ::testing::Values(
        // Register-depth downgrades.
        DownCase{"hmmer", "x86-64D-64W-P", "x86-32D-64W-P"},
        DownCase{"hmmer", "x86-64D-64W-P", "x86-16D-64W-P"},
        DownCase{"bzip2", "x86-32D-64W-P", "x86-16D-64W-P"},
        DownCase{"astar", "x86-32D-32W-P", "x86-8D-32W-P"},
        // Complexity downgrades.
        DownCase{"mcf", "x86-32D-64W-P", "microx86-32D-64W-P"},
        DownCase{"hmmer", "x86-64D-64W-P", "microx86-64D-64W-P"},
        // Predication downgrades.
        DownCase{"sjeng", "x86-64D-64W-F", "x86-64D-64W-P"},
        DownCase{"gobmk", "x86-32D-64W-F", "x86-32D-64W-P"},
        // Combined downgrades.
        DownCase{"sjeng", "x86-64D-64W-F", "microx86-16D-64W-P"},
        DownCase{"milc", "x86-64D-64W-F", "microx86-32D-64W-P"}),
    [](const ::testing::TestParamInfo<DownCase> &info) {
        std::string n = std::string(info.param.bench) + "_" +
                        info.param.code + "_to_" + info.param.core;
        for (auto &ch : n) {
            if (ch == '-')
                ch = '_';
        }
        return n;
    });

TEST(Downgrade, WidthTraceExpansion)
{
    FeatureSet code = FeatureSet::parse("x86-32D-64W-P");
    IrModule m = smallModule("bzip2"); // I64-heavy
    CompileOptions opts;
    opts.target = code;
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage img = MemImage::build(ir, 64);
    Trace tr;
    executeMachine(prog, img, 1ULL << 30, &tr);
    DowngradeStats st;
    Trace down = downgradeWidthTrace(tr, &st);
    EXPECT_GT(st.widthExpansions, 0);
    EXPECT_GT(down.ops.size(), tr.ops.size());
    EXPECT_GT(down.dyn.uops, tr.dyn.uops);
}

TEST(Downgrade, DepthCostOrdering)
{
    MicroArchConfig ua = MicroArchConfig::byId(150);
    FeatureSet code = FeatureSet::parse("x86-64D-64W-P");
    int hmmer0 = 0;
    // hmmer is the first benchmark alphabetically? Find its phase.
    int at = 0;
    for (const auto &b : specSuite()) {
        if (b.name == "hmmer")
            hmmer0 = at;
        at += int(b.phases.size());
    }
    DowngradeCost to32 = measureDowngrade(
        hmmer0, code, FeatureSet::parse("x86-32D-64W-P"), ua);
    DowngradeCost to16 = measureDowngrade(
        hmmer0, code, FeatureSet::parse("x86-16D-64W-P"), ua);
    // hmmer uses the deep register file; cutting it deeper hurts
    // more (Figure 14's ordering).
    EXPECT_GT(to16.slowdown, to32.slowdown);
    EXPECT_GT(to16.slowdown, 0.02);
    EXPECT_GT(to16.depthRewrites, to32.depthRewrites);
}

TEST(Downgrade, Microx86TransformIsCheap)
{
    MicroArchConfig ua = MicroArchConfig::byId(150);
    DowngradeCost c = measureDowngrade(
        0, FeatureSet::parse("x86-32D-64W-P"),
        FeatureSet::parse("microx86-32D-64W-P"), ua);
    EXPECT_GT(c.unfoldedOps, 0);
    EXPECT_LT(c.slowdown, 0.25); // "4.2% on average" scale
}

TEST(Downgrade, UpgradeNeedsNoTranslation)
{
    FeatureSet small = FeatureSet::parse("microx86-16D-32W-P");
    FeatureSet big = FeatureSet::parse("x86-64D-64W-F");
    EXPECT_TRUE(big.subsumes(small));
    // An upgrade keeps the binary byte-for-byte.
    IrModule m = smallModule("astar");
    CompileOptions opts;
    opts.target = small;
    MachineProgram prog = compile(m, opts);
    DowngradeStats st;
    MachineProgram same = downgradeProgram(prog, big, 0x1000, &st);
    EXPECT_EQ(st.depthRewrites, 0);
    EXPECT_EQ(st.unfoldedOps, 0);
    EXPECT_EQ(st.reverseIfConverted, 0);
    EXPECT_EQ(same.stats.instrs, prog.stats.instrs);
}

TEST(Downgrade, VendorTraceAdjustment)
{
    IrModule m = smallModule("astar");
    CompileOptions opts;
    opts.target = FeatureSet::thumbLike();
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage img = MemImage::build(ir, 32);
    Trace tr;
    executeMachine(prog, img, 1ULL << 30, &tr);
    Trace thumb = vendorAdjustTrace(tr, 0.72);
    uint64_t orig_bytes = 0, thumb_bytes = 0;
    for (size_t i = 0; i < tr.ops.size(); i++) {
        orig_bytes += tr.ops[i].len;
        thumb_bytes += thumb.ops[i].len;
    }
    EXPECT_LT(thumb_bytes, orig_bytes * 85 / 100);
}

} // namespace
} // namespace cisa
