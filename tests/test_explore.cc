/**
 * @file
 * Tests of the exploration layer: design-point indexing, campaign
 * caching, the phase-boundary scheduler, and the budgeted search.
 * Uses a reduced simulation budget and a private cache so the test
 * stays fast and does not disturb the benchmark campaign cache.
 */

#include <cstdio>
#include <cstdlib>

// Must run before any Campaign::get() in this process.
namespace
{
struct EnvSetup
{
    EnvSetup()
    {
        setenv("CISA_SIM_UOPS", "1500", 1);
        setenv("CISA_SIM_WARMUP", "400", 1);
        setenv("CISA_DSE_CACHE", "/tmp/cisa_test_cache.bin", 1);
        setenv("CISA_SEARCH_RESTARTS", "1", 1);
        // Start from a cold store: a stale (or quarantined) file
        // from a previous run must not feed this one.
        std::remove("/tmp/cisa_test_cache.bin");
        std::remove("/tmp/cisa_test_cache.bin.corrupt");
    }
} env_setup;
} // namespace

#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/parallel.hh"
#include "explore/campaign.hh"
#include "explore/schedule.hh"
#include "explore/search.hh"

namespace cisa
{
namespace
{

int
x64Isa()
{
    return FeatureSet::x86_64().id();
}

/** An x86-64-only filter keeps tests to two campaign slabs. */
bool
x64Only(const FeatureSet &f)
{
    return f == FeatureSet::x86_64() ||
           f == FeatureSet::thumbLike();
}

TEST(DesignPoint, RowRoundTrip)
{
    for (int row = 0; row < DesignPoint::kTotalRows; row += 97) {
        DesignPoint dp = DesignPoint::fromRow(row);
        EXPECT_EQ(dp.row(), row);
    }
    DesignPoint v =
        DesignPoint::vendorPoint(VendorIsa::ThumbLike, 17);
    EXPECT_EQ(DesignPoint::fromRow(v.row()), v);
    EXPECT_GE(v.row(), DesignPoint::kCompositeRows);
}

TEST(DesignPoint, CostsArePositive)
{
    DesignPoint dp = DesignPoint::composite(x64Isa(), 100);
    EXPECT_GT(dp.areaMm2(), 5.0);
    EXPECT_GT(dp.peakPowerW(), 2.0);
    DesignPoint th =
        DesignPoint::vendorPoint(VendorIsa::ThumbLike, 0);
    // Thumb-like vendor core: no SIMD, small ISA state.
    EXPECT_LT(th.areaMm2(), dp.areaMm2());
}

TEST(Campaign, ValuesAreSane)
{
    Campaign &c = Campaign::get();
    DesignPoint dp = DesignPoint::composite(x64Isa(), 150);
    for (int ph = 0; ph < phaseCount(); ph += 11) {
        const PhasePerf &pp = c.at(dp, ph);
        EXPECT_GT(pp.timePerRun, 0.0f);
        EXPECT_GT(pp.energyPerRun, 0.0f);
        // Contention never helps.
        EXPECT_GE(pp.timePerRunMp, pp.timePerRun * 0.98f);
    }
}

TEST(Campaign, BiggerCoreIsFasterSomewhere)
{
    Campaign &c = Campaign::get();
    // uarch 0 is a small in-order; a big OoO exists later on.
    DesignPoint small = DesignPoint::composite(x64Isa(), 0);
    int big_id = -1;
    for (const auto &ua : MicroArchConfig::enumerate()) {
        if (ua.outOfOrder && ua.width == 4 && ua.iqSize == 64 &&
            ua.uopCache && ua.l1iKB == 64) {
            big_id = ua.id();
            break;
        }
    }
    ASSERT_GE(big_id, 0);
    DesignPoint big = DesignPoint::composite(x64Isa(), big_id);
    int faster = 0;
    for (int ph = 0; ph < phaseCount(); ph++) {
        faster += c.at(big, ph).timePerRun <
                  c.at(small, ph).timePerRun;
    }
    EXPECT_GT(faster, phaseCount() * 3 / 4);
}

TEST(Campaign, CachePersists)
{
    Campaign::get().ensureSlab(x64Isa());
    FILE *f = std::fopen("/tmp/cisa_test_cache.bin", "rb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
}

TEST(Campaign, BudgetKeyNeverAliases)
{
    // The old key, simUops * 1000003 + warmup, aliased whenever one
    // budget's warmup spilled into another's uops slot — e.g.
    // (1, 1000003) and (2, 0) shared a cache. Mixed keys must keep
    // every distinct (uops, warmup) pair distinct.
    EXPECT_NE(Campaign::budgetKeyFor(1, 1000003),
              Campaign::budgetKeyFor(2, 0));
    // Arguments are not interchangeable either.
    EXPECT_NE(Campaign::budgetKeyFor(1500, 400),
              Campaign::budgetKeyFor(400, 1500));

    std::set<uint64_t> keys;
    size_t n = 0;
    for (uint64_t u : {0ull, 1ull, 2ull, 1500ull, 6000ull}) {
        for (uint64_t w : {0ull, 1ull, 400ull, 1500ull, 1000003ull}) {
            keys.insert(Campaign::budgetKeyFor(u, w));
            n++;
        }
    }
    EXPECT_EQ(keys.size(), n);
    // The whole colliding family of the old scheme (constant
    // u * 1000003 + w) must now fan out to distinct keys.
    keys.clear();
    for (uint64_t u = 0; u <= 12; u++)
        keys.insert(Campaign::budgetKeyFor(u, (12 - u) * 1000003));
    EXPECT_EQ(keys.size(), 13u);
}

bool
sameCells(const std::vector<PhasePerf> &a,
          const std::vector<PhasePerf> &b)
{
    return a.size() == b.size() &&
           std::memcmp(a.data(), b.data(),
                       a.size() * sizeof(PhasePerf)) == 0;
}

TEST(Campaign, EngineChoicesAreByteIdenticalAtAnyThreads)
{
    // One slab through every engine: the live reference, per-cell
    // replay, and the batched lockstep engine must produce the same
    // bytes — serially and on a 4-lane pool (each cell is written by
    // exactly one task, so thread count must not matter).
    std::vector<PhasePerf> live, replay, batch;
    EngineHealth ehb;
    {
        ScopedThreadLimit serial(1);
        live = computeSlabPerf(x64Isa(), SlabEngine::Live);
        replay = computeSlabPerf(x64Isa(), SlabEngine::Replay);
        batch = computeSlabPerf(x64Isa(), SlabEngine::Batch,
                                nullptr, &ehb);
    }
    EXPECT_TRUE(sameCells(live, replay));
    EXPECT_TRUE(sameCells(live, batch));

    // Engine accounting: every (uarch, phase, env) sim is either
    // batched or per-cell, and each saved walk came out of a batch.
    uint64_t sims = uint64_t(DesignPoint::kUarchCount) *
                    uint64_t(phaseCount()) * 2;
    EXPECT_EQ(ehb.cellsBatched + ehb.cellsPerCell, sims);
    EXPECT_GT(ehb.cellsBatched, ehb.cellsPerCell);
    EXPECT_EQ(ehb.walksDone + ehb.walksSaved, sims);
    EXPECT_GT(ehb.walksSaved, 0u);

    ScopedThreadLimit four(4);
    EngineHealth eh4;
    std::vector<PhasePerf> batch4 = computeSlabPerf(
        x64Isa(), SlabEngine::Batch, nullptr, &eh4);
    EXPECT_TRUE(sameCells(live, batch4));
    // The (phase, slice, chunk) decomposition is thread-independent,
    // so the counters are too.
    EXPECT_EQ(eh4.cellsBatched, ehb.cellsBatched);
    EXPECT_EQ(eh4.walksDone, ehb.walksDone);
}

TEST(Campaign, BatchKnobsSteerAutoEngineAndKeepBytes)
{
    // setenv is safe here: the knobs are read once on this thread at
    // the top of computeSlabPerf, before any pool fan-out.
    setenv("CISA_BATCH", "0", 1);
    EngineHealth off_h;
    std::vector<PhasePerf> off = computeSlabPerf(
        x64Isa(), SlabEngine::Auto, nullptr, &off_h);
    EXPECT_EQ(off_h.cellsBatched, 0u);
    EXPECT_GT(off_h.cellsPerCell, 0u);

    setenv("CISA_BATCH", "1", 1);
    EngineHealth on_h;
    std::vector<PhasePerf> on = computeSlabPerf(
        x64Isa(), SlabEngine::Auto, nullptr, &on_h);
    EXPECT_GT(on_h.cellsBatched, 0u);
    EXPECT_TRUE(sameCells(off, on));

    // A tiny chunk width forces more (smaller) walks but must not
    // change a single byte.
    setenv("CISA_BATCH_WIDTH", "4", 1);
    EngineHealth narrow_h;
    std::vector<PhasePerf> narrow = computeSlabPerf(
        x64Isa(), SlabEngine::Batch, nullptr, &narrow_h);
    EXPECT_TRUE(sameCells(off, narrow));
    EXPECT_GT(narrow_h.walksDone, on_h.walksDone);

    unsetenv("CISA_BATCH");
    unsetenv("CISA_BATCH_WIDTH");
}

MulticoreDesign
mixedDesign()
{
    // Two big OoO + two small in-order x86-64 cores.
    int big = -1, small = -1;
    for (const auto &ua : MicroArchConfig::enumerate()) {
        if (ua.outOfOrder && ua.width == 4 && ua.iqSize == 64 &&
            ua.uopCache && big < 0)
            big = ua.id();
        if (!ua.outOfOrder && ua.width == 1 && !ua.uopCache &&
            small < 0)
            small = ua.id();
    }
    return {{DesignPoint::composite(x64Isa(), big),
             DesignPoint::composite(x64Isa(), big),
             DesignPoint::composite(x64Isa(), small),
             DesignPoint::composite(x64Isa(), small)}};
}

TEST(Schedule, SingleThreadPicksGoodCores)
{
    MulticoreDesign d = mixedDesign();
    StOutcome o = runSingleThread(d, 0, Objective::StPerf);
    EXPECT_GT(o.time, 0.0);
    EXPECT_GT(o.energy, 0.0);
    // Best-core-per-phase can't be slower than pinning to core 2
    // (a small core).
    MulticoreDesign small_only{{d.cores[2], d.cores[2], d.cores[2],
                                d.cores[2]}};
    StOutcome so = runSingleThread(small_only, 0, Objective::StPerf);
    EXPECT_LE(o.time, so.time * 1.0001);
}

TEST(Schedule, ObjectivesSteerCoreChoice)
{
    // Greedy per-phase selection: the perf objective minimizes total
    // time exactly; the EDP objective minimizes the per-phase t*e
    // sum (a heuristic for the product of sums, so no strict global
    // EDP guarantee).
    MulticoreDesign d = mixedDesign();
    for (int b = 0; b < 3; b++) {
        StOutcome perf = runSingleThread(d, b, Objective::StPerf);
        StOutcome edp = runSingleThread(d, b, Objective::StEdp);
        EXPECT_LE(perf.time, edp.time * 1.0001);
        EXPECT_GT(edp.edp, 0.0);
    }
}

TEST(Schedule, MultiprogCompletesAllApps)
{
    MulticoreDesign d = mixedDesign();
    MpOutcome o = runMultiprog(d, {0, 2, 4, 6},
                               Objective::MpThroughput);
    EXPECT_GT(o.throughput, 0.0);
    EXPECT_GT(o.makespan, 0.0);
    EXPECT_GT(o.energy, 0.0);
    EXPECT_NEAR(o.edp, o.energy * o.makespan, 1e-12);
}

TEST(Schedule, MigrationCostsReduceThroughput)
{
    MulticoreDesign d = mixedDesign();
    MigrationModel mig;
    mig.perMigrationSeconds = 1e-4; // deliberately large
    for (int b = 0; b < 8; b++)
        mig.binaryFs[size_t(b)] = FeatureSet::x86_64();
    MpOutcome base = runMultiprog(d, {0, 2, 4, 6},
                                  Objective::MpThroughput);
    MpOutcome cost = runMultiprog(d, {0, 2, 4, 6},
                                  Objective::MpThroughput, nullptr,
                                  &mig);
    EXPECT_LE(cost.throughput, base.throughput);
    EXPECT_GE(cost.census.migrations, 0);
}

TEST(Schedule, UsageAccountsAllTime)
{
    MulticoreDesign d = mixedDesign();
    AffinityUsage usage;
    MpOutcome o = runMultiprog(d, {0, 2, 4, 6},
                               Objective::MpThroughput, &usage);
    double total = 0;
    for (const auto &[isa, by_bench] : usage) {
        for (double t : by_bench)
            total += t;
    }
    // Total attributed time is at most 4 cores x makespan.
    EXPECT_LE(total, 4.0 * o.makespan * 1.001);
    EXPECT_GT(total, o.makespan * 0.5);
}

TEST(Search, HomogeneousRespectsBudget)
{
    Budget b;
    b.powerW = 30;
    SearchResult r = searchDesign(Family::Homogeneous,
                                  Objective::MpThroughput, b, 1);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.design.totalPeakPowerW(), 30.0 + 1e-6);
    // All four cores identical.
    EXPECT_EQ(r.design.cores[0], r.design.cores[1]);
    EXPECT_EQ(r.design.cores[0], r.design.cores[3]);
}

TEST(Search, HeteroBeatsHomogeneousUnconstrained)
{
    Budget b; // unlimited
    SearchResult homo = searchDesign(Family::Homogeneous,
                                     Objective::MpThroughput, b, 1);
    SearchResult het = searchDesign(Family::SingleIsaHetero,
                                    Objective::MpThroughput, b, 1);
    ASSERT_TRUE(homo.feasible && het.feasible);
    EXPECT_GE(designScore(het.design, Objective::MpThroughput, 12),
              designScore(homo.design, Objective::MpThroughput, 12) *
                  0.999);
}

TEST(Search, FilterIsRespected)
{
    Budget b;
    b.areaMm2 = 60;
    SearchResult r = searchDesign(Family::CompositeFull,
                                  Objective::MpThroughput, b, 1,
                                  x64Only);
    ASSERT_TRUE(r.feasible);
    for (const auto &c : r.design.cores)
        EXPECT_TRUE(x64Only(c.isa())) << c.name();
}

TEST(Search, DynamicMulticoreBindsMaxPower)
{
    Budget b;
    b.powerW = 9;
    b.dynamicMulticore = true;
    SearchResult r = searchDesign(Family::SingleIsaHetero,
                                  Objective::StPerf, b, 1);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.design.maxPeakPowerW(), 9.0 + 1e-6);
    // The sum may well exceed the per-core cap.
    EXPECT_GT(r.design.totalPeakPowerW(), 9.0);
}

} // namespace
} // namespace cisa
