/**
 * @file
 * Tests of the workload substrate: the 49-phase suite structure,
 * generator determinism, the behavioural properties each benchmark
 * model promises (pressure, branchiness, footprint, vectorizability,
 * pointer chasing), and the SimPoint clustering machinery.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "compiler/compiler.hh"
#include "compiler/exec.hh"
#include "compiler/interp.hh"
#include "workloads/profiles.hh"
#include "workloads/simpoint.hh"
#include "workloads/synth.hh"

namespace cisa
{
namespace
{

TEST(Profiles, FortyNinePhases)
{
    EXPECT_EQ(phaseCount(), 49);
    EXPECT_EQ(specSuite().size(), 8u);
    // bzip2 has 8 phases like the paper's 8 regions.
    EXPECT_EQ(specSuite()[size_t(benchIndex("bzip2"))].phases.size(),
              8u);
    EXPECT_EQ(specSuite()[size_t(benchIndex("sjeng"))].phases.size(),
              8u);
}

TEST(Profiles, WeightsNormalized)
{
    for (const auto &b : specSuite()) {
        double sum = 0;
        for (const auto &p : b.phases)
            sum += p.weight;
        EXPECT_NEAR(sum, 1.0, 1e-9) << b.name;
    }
}

TEST(Profiles, CharacterMatchesPaper)
{
    const auto &hmmer =
        specSuite()[size_t(benchIndex("hmmer"))].phases[0];
    const auto &lbm = specSuite()[size_t(benchIndex("lbm"))].phases[0];
    const auto &mcf = specSuite()[size_t(benchIndex("mcf"))].phases[0];
    const auto &sjeng =
        specSuite()[size_t(benchIndex("sjeng"))].phases[0];
    EXPECT_GT(hmmer.accumulators, 2 * lbm.accumulators);
    EXPECT_TRUE(mcf.pointerChase);
    EXPECT_GT(sjeng.hammocks, 0);
    EXPECT_FALSE(sjeng.hammockPredictable);
    EXPECT_GT(lbm.vecLoops, 0);
    EXPECT_GT(lbm.footprintKB, 4 * hmmer.footprintKB);
    EXPECT_TRUE(specSuite()[size_t(benchIndex("bzip2"))]
                    .phases[0]
                    .useI64);
}

TEST(Synth, Deterministic)
{
    IrModule a = buildPhase(allPhases()[5]);
    IrModule b = buildPhase(allPhases()[5]);
    EXPECT_EQ(a.print(), b.print());
}

TEST(Synth, PhasesDiffer)
{
    IrModule a = buildPhase(allPhases()[0]);
    IrModule b = buildPhase(allPhases()[1]);
    EXPECT_NE(a.print(), b.print());
}

TEST(Synth, ProgramsRunToCompletion)
{
    for (int ph = 0; ph < phaseCount(); ph += 5) {
        PhaseProfile p = allPhases()[size_t(ph)];
        p.targetDynOps = 8000;
        p.outerTrip = 2;
        IrModule m = buildPhase(p);
        MemImage img = MemImage::build(m, 64);
        ExecResult r = interpret(m, img, 1ULL << 24);
        EXPECT_FALSE(r.ranOut) << p.name();
        EXPECT_GT(r.stores, 0u) << p.name();
    }
}

TEST(Synth, PointerChaseMissesCaches)
{
    // The mcf model's chase region exceeds any L1; its loads must
    // produce serially dependent addresses spread over the region.
    PhaseProfile p =
        specSuite()[size_t(benchIndex("mcf"))].phases[0];
    p.targetDynOps = 20000;
    p.outerTrip = 2;
    IrModule m = buildPhase(p);
    CompileOptions opts;
    opts.target = FeatureSet::x86_64();
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage img = MemImage::build(ir, 64);
    Trace tr;
    executeMachine(prog, img, 1ULL << 30, &tr);
    // Distinct chase addresses: count unique line addresses among
    // loads into the chain region.
    uint64_t lo = img.regionBase[5];
    uint64_t hi = lo + 1024 * 1024 * 64;
    std::set<uint64_t> lines;
    for (const auto &op : tr.ops) {
        if (op.readsMem() && op.maddr >= lo && op.maddr < hi)
            lines.insert(op.maddr >> 6);
    }
    EXPECT_GT(lines.size(), 200u);
}

TEST(Synth, VectorizableLoopsAreCanonical)
{
    PhaseProfile p =
        specSuite()[size_t(benchIndex("lbm"))].phases[0];
    p.targetDynOps = 8000;
    IrModule m = buildPhase(p);
    CompileOptions opts;
    opts.target = FeatureSet::superset();
    CompileReport rep;
    compile(m, opts, &rep);
    EXPECT_EQ(rep.vec.loopsRejected, 0);
    EXPECT_GE(rep.vec.loopsVectorized, p.vecLoops);
}

TEST(Simpoint, KmeansSeparatesClusters)
{
    // Two well-separated blobs must be recovered exactly.
    std::vector<std::vector<double>> pts;
    for (int i = 0; i < 40; i++) {
        double base = i < 20 ? 0.0 : 10.0;
        pts.push_back({base + (i % 5) * 0.01,
                       base - (i % 3) * 0.01});
    }
    KMeansResult r = kmeans(pts, 2, 50, 7);
    for (int i = 1; i < 20; i++)
        EXPECT_EQ(r.assignment[size_t(i)], r.assignment[0]);
    for (int i = 21; i < 40; i++)
        EXPECT_EQ(r.assignment[size_t(i)], r.assignment[20]);
    EXPECT_NE(r.assignment[0], r.assignment[20]);
}

TEST(Simpoint, FindsPhasesInStitchedTrace)
{
    // Stitch two very different phases; the BBV clustering should
    // use at least two clusters and assign different clusters to
    // the two halves.
    auto trace_for = [&](const char *bench) {
        PhaseProfile p =
            specSuite()[size_t(benchIndex(bench))].phases[0];
        p.targetDynOps = 30000;
        p.outerTrip = 2;
        IrModule m = buildPhase(p);
        CompileOptions opts;
        opts.target = FeatureSet::x86_64();
        IrModule ir;
        MachineProgram prog = compile(m, opts, nullptr, &ir);
        MemImage img = MemImage::build(ir, 64);
        Trace tr;
        executeMachine(prog, img, 1ULL << 30, &tr);
        return tr;
    };
    Trace a = trace_for("hmmer");
    Trace b = trace_for("lbm");
    Trace all;
    all.ops = a.ops;
    size_t half = all.ops.size();
    for (const auto &op : b.ops)
        all.ops.push_back(op);

    SimpointResult sp = findSimpoints(all, 4000, 6);
    ASSERT_GE(sp.k, 2);
    size_t half_iv = half / 4000;
    // Majority cluster of each half must differ.
    std::map<int, int> ca, cb;
    for (size_t i = 0; i < sp.assignment.size(); i++) {
        if (i < half_iv)
            ca[sp.assignment[i]]++;
        else
            cb[sp.assignment[i]]++;
    }
    auto arg_max = [](const std::map<int, int> &m) {
        int best = -1, cnt = -1;
        for (auto &[k, v] : m) {
            if (v > cnt) {
                cnt = v;
                best = k;
            }
        }
        return best;
    };
    EXPECT_NE(arg_max(ca), arg_max(cb));
}

TEST(Simpoint, WeightsSumToOne)
{
    Trace tr;
    // A synthetic trace alternating between two pc regions.
    for (int i = 0; i < 40000; i++) {
        DynOp op;
        op.pc = (i / 10000) % 2 ? 0x400000 + uint64_t(i % 64) * 4
                                : 0x500000 + uint64_t(i % 32) * 4;
        op.flags = (i % 8 == 7) ? DynIsBranch : 0;
        tr.ops.push_back(op);
    }
    SimpointResult sp = findSimpoints(tr, 2000, 5);
    double sum = 0;
    for (double w : sp.weights)
        sum += w;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (int s : sp.simpoints)
        EXPECT_LT(s, int(sp.assignment.size()));
}

} // namespace
} // namespace cisa
