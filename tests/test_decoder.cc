/**
 * @file
 * Tests of the structural decoder model against the paper's
 * synthesized-RTL deltas (Sections III and V). Bands are generous
 * (the paper's own scopes are fuzzy); EXPERIMENTS.md reports the
 * exact measured-vs-paper numbers.
 */

#include <gtest/gtest.h>

#include "decoder/decodemodel.hh"

namespace cisa
{
namespace
{

MicroArchConfig
ua3()
{
    MicroArchConfig c;
    c.simpleDecoders = 3;
    return c;
}

double
rel(double a, double b)
{
    return (a / b - 1.0) * 100.0;
}

TEST(Decoder, Microx86DecodeStageSavings)
{
    auto x86 = DecodeEngine::build(FeatureSet::x86_64(), ua3());
    auto micro = DecodeEngine::build(FeatureSet::minimal(), ua3());
    // Paper: -15.1% area, -9.8% peak power.
    double a = rel(micro.decodeStage().areaMm2,
                   x86.decodeStage().areaMm2);
    double p = rel(micro.decodeStage().peakPowerW,
                   x86.decodeStage().peakPowerW);
    EXPECT_LT(a, -8.0);
    EXPECT_GT(a, -25.0);
    EXPECT_LT(p, -5.0);
    EXPECT_GT(p, -16.0);
}

TEST(Decoder, Microx86EngineDeltaIsSmall)
{
    auto x86 = DecodeEngine::build(FeatureSet::x86_64(), ua3());
    auto micro = DecodeEngine::build(FeatureSet::minimal(), ua3());
    // Paper: -1.12% area, -0.66% power for the whole engine.
    double a = rel(micro.engine().areaMm2, x86.engine().areaMm2);
    double p = rel(micro.engine().peakPowerW,
                   x86.engine().peakPowerW);
    EXPECT_LT(a, -0.5);
    EXPECT_GT(a, -2.5);
    EXPECT_LT(p, -0.3);
    EXPECT_GT(p, -2.5);
}

TEST(Decoder, SupersetEngineDeltaIsSmall)
{
    auto x86 = DecodeEngine::build(FeatureSet::x86_64(), ua3());
    auto sup = DecodeEngine::build(FeatureSet::superset(), ua3());
    // Paper: +0.46% area, +0.3% power.
    double a = rel(sup.engine().areaMm2, x86.engine().areaMm2);
    double p = rel(sup.engine().peakPowerW, x86.engine().peakPowerW);
    EXPECT_GT(a, 0.2);
    EXPECT_LT(a, 1.2);
    EXPECT_GT(p, 0.15);
    EXPECT_LT(p, 1.2);
}

TEST(Decoder, SupersetIldDelta)
{
    auto x86 = DecodeEngine::build(FeatureSet::x86_64(), ua3());
    auto sup = DecodeEngine::build(FeatureSet::superset(), ua3());
    // Paper: +0.65% area, +0.87% power for the ILD itself.
    double a = rel(sup.ild.areaMm2, x86.ild.areaMm2);
    EXPECT_GT(a, 0.3);
    EXPECT_LT(a, 1.6);
}

TEST(Decoder, FixedLengthIsaSkipsIld)
{
    auto var = DecodeEngine::build(FeatureSet::alphaLike(), ua3());
    auto fixed = DecodeEngine::build(FeatureSet::alphaLike(), ua3(),
                                     true);
    EXPECT_LT(fixed.ild.areaMm2, var.ild.areaMm2 / 10.0);
}

TEST(Decoder, MsromOnlyOnCisc)
{
    auto x86 = DecodeEngine::build(FeatureSet::x86_64(), ua3());
    auto micro = DecodeEngine::build(
        FeatureSet::parse("microx86-16D-64W-P"), ua3());
    EXPECT_GT(x86.msrom.gates, 0.0);
    EXPECT_EQ(micro.msrom.gates, 0.0);
}

TEST(Decoder, DepthAlonePaysOnlyEncodingCosts)
{
    // Deepening registers (REXBC) costs a little; predication adds a
    // little more; both remain far below the decode-stage delta.
    auto d16 = DecodeEngine::build(
        FeatureSet::parse("x86-16D-64W-P"), ua3());
    auto d64 = DecodeEngine::build(
        FeatureSet::parse("x86-64D-64W-P"), ua3());
    auto d64f = DecodeEngine::build(
        FeatureSet::parse("x86-64D-64W-F"), ua3());
    EXPECT_GT(d64.total().areaMm2, d16.total().areaMm2);
    EXPECT_GT(d64f.total().areaMm2, d64.total().areaMm2);
    EXPECT_LT(rel(d64f.total().areaMm2, d16.total().areaMm2), 2.0);
}

TEST(Decoder, CostAddition)
{
    auto e = DecodeEngine::build(FeatureSet::x86_64(), ua3());
    HwCost t = e.total();
    double sum = e.ild.areaMm2 + e.decoders.areaMm2 +
                 e.msrom.areaMm2 + e.macroQueue.areaMm2 +
                 e.uopQueue.areaMm2;
    EXPECT_NEAR(t.areaMm2, sum, 1e-12);
}

} // namespace
} // namespace cisa
