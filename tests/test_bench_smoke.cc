/**
 * @file
 * Integration smoke tests of the figure-generation pipeline itself:
 * the pieces each bench binary composes (campaign lookups, searches,
 * schedules, breakdowns) must produce internally consistent figures.
 * Kept cheap: a private campaign cache with a tiny simulation budget
 * (configured before main in test_explore-style).
 */

#include <cstdlib>

namespace
{
struct EnvSetup
{
    EnvSetup()
    {
        setenv("CISA_SIM_UOPS", "1200", 1);
        setenv("CISA_SIM_WARMUP", "300", 1);
        setenv("CISA_DSE_CACHE", "/tmp/cisa_smoke_cache.bin", 1);
        setenv("CISA_SEARCH_RESTARTS", "1", 1);
    }
} env_setup;
} // namespace

#include <gtest/gtest.h>

#include "core/cisa.hh"

namespace cisa
{
namespace
{

bool
smallSpace(const FeatureSet &f)
{
    // Three ISAs keep the smoke campaign to three slabs.
    return f == FeatureSet::x86_64() || f == FeatureSet::thumbLike() ||
           f == FeatureSet::parse("x86-64D-64W-F");
}

TEST(BenchSmoke, SearchScheduleBreakdownPipeline)
{
    Budget bud;
    bud.areaMm2 = 60;
    SearchResult r = searchDesign(Family::CompositeFull,
                                  Objective::MpThroughput, bud, 3,
                                  smallSpace);
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.design.totalAreaMm2(), 60.0 + 1e-9);

    // Figure-5-style score vs a homogeneous baseline.
    SearchResult homo = searchDesign(Family::Homogeneous,
                                     Objective::MpThroughput, bud,
                                     3);
    double comp = designScore(r.design, Objective::MpThroughput, 8);
    double base = designScore(homo.design, Objective::MpThroughput,
                              8);
    EXPECT_GT(comp, base * 0.99);

    // Figure-12-style usage accounting.
    AffinityUsage usage;
    for (int b = 0; b < int(specSuite().size()); b++)
        runSingleThread(r.design, b, Objective::StPerf, &usage);
    double total = 0;
    for (const auto &[isa, by_bench] : usage) {
        for (double t : by_bench)
            total += t;
    }
    EXPECT_GT(total, 0.0);

    // Figure-10/11-style breakdowns of the found design.
    for (const auto &core : r.design.cores) {
        CoreBreakdown area = coreArea(core.coreConfig());
        EXPECT_GT(area.coreOnly(), 0.0);
        EXPECT_GT(area.total(), area.coreOnly());
    }
}

TEST(BenchSmoke, ConstraintMonotonicity)
{
    // Loosening an area budget can only help.
    Budget tight;
    tight.areaMm2 = 48;
    Budget loose;
    loose.areaMm2 = 90;
    SearchResult a = searchDesign(Family::SingleIsaHetero,
                                  Objective::MpThroughput, tight, 5);
    SearchResult b = searchDesign(Family::SingleIsaHetero,
                                  Objective::MpThroughput, loose, 5);
    ASSERT_TRUE(a.feasible && b.feasible);
    double sa = designScore(a.design, Objective::MpThroughput, 8);
    double sb = designScore(b.design, Objective::MpThroughput, 8);
    EXPECT_GE(sb, sa * 0.98);
}

TEST(BenchSmoke, DowngradePipeline)
{
    // Figure-14-style call path with the smoke budget.
    MicroArchConfig ua = MicroArchConfig::byId(150);
    DowngradeCost c =
        measureDowngrade(0, FeatureSet::parse("x86-64D-64W-P"),
                         FeatureSet::parse("x86-16D-64W-P"), ua);
    EXPECT_GT(c.depthRewrites, 0);
    EXPECT_GT(c.slowdown, -0.5);
    EXPECT_LT(c.slowdown, 5.0);
}

} // namespace
} // namespace cisa
