/**
 * @file
 * Tests of the timing substrate: predictor learning, cache
 * geometry/LRU behaviour, config enumeration, and engine sanity
 * properties (IPC bounds, out-of-order > in-order, wider > narrower,
 * memory-bound workloads punished by small caches, branchy workloads
 * punished by misprediction, uop-cache benefit on CISC code).
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "compiler/compiler.hh"
#include "uarch/batch.hh"
#include "uarch/bpred.hh"
#include "uarch/cache.hh"
#include "uarch/core.hh"
#include "uarch/replay.hh"
#include "uarch/uopcache.hh"
#include "workloads/profiles.hh"
#include "workloads/synth.hh"

namespace cisa
{
namespace
{

Trace
traceFor(const char *bench, const FeatureSet &fs, int phase = 0)
{
    int bi = benchIndex(bench);
    PhaseProfile p = specSuite()[size_t(bi)].phases[size_t(phase)];
    p.targetDynOps = 30000;
    p.outerTrip = 3;
    IrModule m = buildPhase(p);
    CompileOptions opts;
    opts.target = fs;
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage img = MemImage::build(ir, fs.widthBits());
    Trace tr;
    executeMachine(prog, img, 1ULL << 30, &tr);
    return tr;
}

PerfResult
runOn(const Trace &tr, const MicroArchConfig &ua,
      const FeatureSet &fs)
{
    CoreConfig cc{fs, ua};
    return simulateCore(cc, tr, 12000, 3000);
}

MicroArchConfig
bigOoo()
{
    MicroArchConfig c;
    c.outOfOrder = true;
    c.width = 4;
    c.intAlus = 6;
    c.intMuls = 2;
    c.fpAlus = 4;
    c.iqSize = 64;
    c.robSize = 128;
    c.intPrf = 192;
    c.fpPrf = 160;
    c.lsqSize = 32;
    c.l1iKB = 64;
    c.l1dKB = 64;
    c.l2KB = 8192;
    c.l2Assoc = 8;
    return c;
}

MicroArchConfig
smallIo()
{
    MicroArchConfig c;
    c.outOfOrder = false;
    c.width = 1;
    c.intAlus = 1;
    c.intMuls = 1;
    c.fpAlus = 1;
    c.iqSize = 32;
    c.robSize = 64;
    c.intPrf = 64;
    c.fpPrf = 16;
    c.lsqSize = 16;
    c.simpleDecoders = 1;
    return c;
}

TEST(Bpred, LearnsPeriodicPattern)
{
    for (BpKind k : {BpKind::Local2Level, BpKind::Gshare,
                     BpKind::Tournament}) {
        auto bp = BranchPredictor::create(k);
        int wrong = 0;
        for (int i = 0; i < 4000; i++) {
            bool taken = (i % 8) != 0; // loop-like pattern
            bool pred = bp->predict(0x4000);
            bp->update(0x4000, taken);
            if (i > 1000 && pred != taken)
                wrong++;
        }
        EXPECT_LT(wrong, 120) << bpName(k);
    }
}

TEST(Bpred, RandomIsHard)
{
    Pcg32 rng(1, 2);
    auto bp = BranchPredictor::create(BpKind::Tournament);
    int wrong = 0;
    int n = 8000;
    for (int i = 0; i < n; i++) {
        bool taken = rng.chance(0.5);
        bool pred = bp->predict(0x4000 + (i % 16) * 8);
        bp->update(0x4000 + (i % 16) * 8, taken);
        wrong += pred != taken;
    }
    EXPECT_GT(wrong, n / 4); // near-chance accuracy
}

TEST(Bpred, TournamentBeatsComponentsOnMix)
{
    // Half the branches periodic (local-friendly), half correlated
    // with global history (gshare-friendly).
    auto run = [&](BpKind k) {
        auto bp = BranchPredictor::create(k);
        Pcg32 rng(7, 3);
        int wrong = 0;
        bool last = false;
        for (int i = 0; i < 20000; i++) {
            uint64_t pc = (i % 2) ? 0x1000 : 0x2000;
            bool taken = (i % 2) ? ((i / 2) % 4) != 0 : !last;
            bool pred = bp->predict(pc);
            bp->update(pc, taken);
            if (i > 4000 && pred != taken)
                wrong++;
            if (i % 2 == 0)
                last = taken;
        }
        return wrong;
    };
    int tournament = run(BpKind::Tournament);
    EXPECT_LE(tournament, run(BpKind::Local2Level) + 200);
    EXPECT_LE(tournament, run(BpKind::Gshare) + 200);
}

TEST(Cache, GeometryAndLru)
{
    Cache c(4, 2); // 4 KB, 2-way, 64B lines: 32 sets
    EXPECT_FALSE(c.access(0, false));
    EXPECT_TRUE(c.access(0, false));
    // Two more lines mapping to set 0: 64*32 apart.
    EXPECT_FALSE(c.access(64 * 32, false));
    EXPECT_TRUE(c.access(0, false));        // still resident
    EXPECT_FALSE(c.access(2 * 64 * 32, false)); // evicts LRU (set0#2)
    EXPECT_TRUE(c.access(0, false));        // MRU survived
    EXPECT_FALSE(c.access(64 * 32, false)); // the LRU one was evicted
    EXPECT_EQ(c.stats().accesses, 7u);
}

TEST(Cache, WritebackCounted)
{
    Cache c(4, 1);
    c.access(0, true);            // dirty
    c.access(64 * 64, false);     // same set, evicts dirty line
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, ShareShrinksCapacity)
{
    // A working set that fits in the full cache but not a quarter.
    auto misses = [&](double share) {
        Cache c(256, 4, share);
        uint64_t lines = 256 * 1024 / 64 / 2; // half capacity
        for (int pass = 0; pass < 4; pass++) {
            for (uint64_t i = 0; i < lines; i++)
                c.access(i * 64, false);
        }
        return c.stats().misses;
    };
    EXPECT_LT(misses(1.0), misses(0.25) / 2);
}

TEST(UopCacheModel, HitsOnRepeats)
{
    UopCache uc;
    for (int i = 0; i < 100; i++)
        uc.fill(0x400000 + uint64_t(i) * 32);
    uint64_t before = uc.hits();
    for (int i = 0; i < 8; i++)
        EXPECT_TRUE(uc.lookup(0x400000 + uint64_t(i % 4) * 32));
    EXPECT_EQ(uc.hits() - before, 8u);
}

TEST(UConfig, ExactlyPaperSize)
{
    EXPECT_EQ(MicroArchConfig::enumerate().size(), 180u);
    // 180 microarch x 26 ISAs = the paper's 4680 design points.
    EXPECT_EQ(int(MicroArchConfig::enumerate().size()) *
                  FeatureSet::count(),
              4680);
}

TEST(UConfig, IdRoundTrip)
{
    for (int i = 0; i < 180; i += 17) {
        MicroArchConfig c = MicroArchConfig::byId(i);
        EXPECT_EQ(c.id(), i);
    }
}

TEST(UConfig, PruningRules)
{
    for (const auto &c : MicroArchConfig::enumerate()) {
        if (c.width == 4)
            EXPECT_GE(c.intAlus, 6); // no starved wide cores
        if (c.width == 1)
            EXPECT_EQ(c.lsqSize, 16);
        if (!c.outOfOrder) {
            EXPECT_EQ(c.intPrf, 64); // architectural file only
            EXPECT_EQ(c.fpPrf, 16);
        }
        EXPECT_EQ(c.uopCache, c.uopFusion);
    }
}

TEST(Engine, IpcWithinPhysicalBounds)
{
    Trace tr = traceFor("hmmer", FeatureSet::x86_64());
    for (int id : {0, 45, 90, 135, 179}) {
        MicroArchConfig ua = MicroArchConfig::byId(id);
        PerfResult r = runOn(tr, ua, FeatureSet::x86_64());
        EXPECT_GT(r.ipc, 0.05) << ua.name();
        EXPECT_LE(r.upc, double(ua.width) + 0.01) << ua.name();
        EXPECT_GT(r.cycles, 0u);
    }
}

TEST(Engine, OutOfOrderBeatsInOrder)
{
    Trace tr = traceFor("mcf", FeatureSet::x86_64());
    MicroArchConfig ooo = bigOoo();
    MicroArchConfig io = ooo;
    io.outOfOrder = false;
    io.intPrf = 64;
    io.fpPrf = 16;
    PerfResult r_ooo = runOn(tr, ooo, FeatureSet::x86_64());
    PerfResult r_io = runOn(tr, io, FeatureSet::x86_64());
    EXPECT_GT(r_ooo.ipc, r_io.ipc * 1.1);
}

TEST(Engine, WidthHelpsComputeBoundCode)
{
    Trace tr = traceFor("hmmer", FeatureSet::x86_64());
    MicroArchConfig wide = bigOoo();
    MicroArchConfig narrow = wide;
    narrow.width = 1;
    narrow.intAlus = 1;
    narrow.fpAlus = 1;
    narrow.simpleDecoders = 1;
    PerfResult rw = runOn(tr, wide, FeatureSet::x86_64());
    PerfResult rn = runOn(tr, narrow, FeatureSet::x86_64());
    EXPECT_GT(rw.ipc, rn.ipc * 1.3);
}

TEST(Engine, CacheSizeMattersForBigFootprints)
{
    Trace tr = traceFor("lbm", FeatureSet::x86_64());
    MicroArchConfig big = bigOoo();
    MicroArchConfig small = big;
    small.l1dKB = 32;
    small.l2KB = 4096;
    small.l2Assoc = 4;
    PerfResult rb = runOn(tr, big, FeatureSet::x86_64());
    PerfResult rs = runOn(tr, small, FeatureSet::x86_64());
    EXPECT_GE(rb.ipc, rs.ipc * 0.99);
    EXPECT_GT(rs.stats.l2Misses + rs.stats.l1dMisses, 0u);
}

TEST(Engine, PointerChaseIsMemoryBound)
{
    Trace tr = traceFor("mcf", FeatureSet::x86_64());
    PerfResult r = runOn(tr, bigOoo(), FeatureSet::x86_64());
    Trace tc = traceFor("hmmer", FeatureSet::x86_64());
    PerfResult rc = runOn(tc, bigOoo(), FeatureSet::x86_64());
    // hmmer (compute bound) runs at much higher IPC than mcf.
    EXPECT_GT(rc.ipc, r.ipc * 1.2);
}

TEST(Engine, BranchyCodeMispredicts)
{
    Trace ts = traceFor("sjeng", FeatureSet::x86_64());
    PerfResult rs = runOn(ts, bigOoo(), FeatureSet::x86_64());
    Trace th = traceFor("hmmer", FeatureSet::x86_64());
    PerfResult rh = runOn(th, bigOoo(), FeatureSet::x86_64());
    EXPECT_GT(rs.stats.mispredictRate(),
              rh.stats.mispredictRate() * 2);
}

TEST(Engine, UopCacheHelpsCiscFrontend)
{
    Trace tr = traceFor("hmmer", FeatureSet::x86_64());
    MicroArchConfig with = bigOoo();
    MicroArchConfig without = with;
    without.uopCache = false;
    without.uopFusion = false;
    PerfResult rw = runOn(tr, with, FeatureSet::x86_64());
    PerfResult ro = runOn(tr, without, FeatureSet::x86_64());
    EXPECT_GE(rw.ipc, ro.ipc);
    EXPECT_GT(rw.stats.uopCacheHits, 0u);
    EXPECT_EQ(ro.stats.uopCacheLookups, 0u);
}

TEST(Engine, SharedL2ContentionHurts)
{
    Trace tr = traceFor("lbm", FeatureSet::x86_64());
    CoreConfig cc{FeatureSet::x86_64(), bigOoo()};
    RunEnv alone;
    RunEnv shared;
    shared.l2Share = 0.25;
    shared.memContention = 1.3;
    PerfResult ra = simulateCore(cc, tr, 12000, 3000, alone);
    PerfResult rs = simulateCore(cc, tr, 12000, 3000, shared);
    EXPECT_GE(ra.ipc, rs.ipc);
}

TEST(Engine, DeterministicAcrossRuns)
{
    Trace tr = traceFor("astar", FeatureSet::x86_64());
    PerfResult a = runOn(tr, bigOoo(), FeatureSet::x86_64());
    PerfResult b = runOn(tr, bigOoo(), FeatureSet::x86_64());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stats.bpMispredicts, b.stats.bpMispredicts);
}

TEST(Engine, PredicationTradesFetchForBranches)
{
    FeatureSet part = FeatureSet::make(Complexity::X86, 32,
                                       RegWidth::W64,
                                       Predication::Partial);
    FeatureSet full = FeatureSet::make(Complexity::X86, 32,
                                       RegWidth::W64,
                                       Predication::Full);
    Trace tp = traceFor("sjeng", part);
    Trace tf = traceFor("sjeng", full);
    PerfResult rp = runOn(tp, bigOoo(), part);
    PerfResult rf = runOn(tf, bigOoo(), full);
    // Full predication removes hard-to-predict branches.
    EXPECT_LT(rf.stats.mispredictRate() * 1.2,
              rp.stats.mispredictRate());
    EXPECT_GT(rf.stats.predFalseUops, 0u);
}


TEST(Engine, StoreForwardingFiresOnSpillTraffic)
{
    // hmmer at depth 16 spills; reloads hit the store buffer.
    FeatureSet fs = FeatureSet::parse("x86-16D-64W-P");
    Trace tr = traceFor("hmmer", fs);
    PerfResult r = runOn(tr, bigOoo(), fs);
    EXPECT_GT(r.stats.sbForwards, 0u);
    // Forwarded loads skip the D-cache: lsqOps exceed cache ops.
    EXPECT_GT(r.stats.lsqOps, r.stats.l1dAccesses);
}

TEST(Engine, PrefetcherHelpsStreaming)
{
    // lbm streams; the next-line prefetcher must be active and the
    // memory system must report prefetch traffic indirectly through
    // additional L2 accesses relative to demand misses.
    Trace tr = traceFor("lbm", FeatureSet::x86_64());
    PerfResult r = runOn(tr, bigOoo(), FeatureSet::x86_64());
    EXPECT_GT(r.stats.l2Accesses, r.stats.l1dMisses);
}

TEST(Engine, BtbWarmsUp)
{
    Trace tr = traceFor("sjeng", FeatureSet::x86_64());
    PerfResult r = runOn(tr, bigOoo(), FeatureSet::x86_64());
    // Taken branches exist; BTB misses are rare once warm.
    uint64_t taken_est = r.stats.bpLookups / 2;
    EXPECT_LT(r.stats.btbMisses, taken_est / 4 + 100);
}

TEST(Engine, CallsUseReturnStack)
{
    // gobmk calls leaf functions; after warmup the RAS predicts all
    // returns, so BTB misses stay low despite frequent call/ret.
    Trace tr = traceFor("gobmk", FeatureSet::x86_64());
    PerfResult a = runOn(tr, bigOoo(), FeatureSet::x86_64());
    EXPECT_LT(double(a.stats.btbMisses),
              0.05 * double(a.stats.macroOps));
}

bool
sameResult(const PerfResult &a, const PerfResult &b)
{
    static_assert(std::is_trivially_copyable_v<PerfStats>);
    return std::memcmp(&a.stats, &b.stats, sizeof(PerfStats)) == 0 &&
           a.cycles == b.cycles && a.ipc == b.ipc && a.upc == b.upc;
}

TEST(Replay, MemoizedStreamsMatchLiveBitForBit)
{
    // The acceptance property of the decoupled replay engine: for
    // any (config, environment, budget), replaying the packed trace
    // against the memoized structural stream reproduces the live
    // engine's PerfResult exactly — including repeated-call
    // determinism of the replay path itself.
    FeatureSet fs = FeatureSet::x86_64();
    Trace tr = traceFor("sjeng", fs);
    const uint64_t timed = 9000, warm = 2000;
    ReplayTrace rt = ReplayTrace::build(tr, timed + warm);

    MicroArchConfig gshareSmall = smallIo();
    gshareSmall.bpred = BpKind::Gshare;
    MicroArchConfig noUc = bigOoo();
    noUc.uopCache = false;
    noUc.uopFusion = false;
    MicroArchConfig localBig = bigOoo();
    localBig.bpred = BpKind::Local2Level;

    RunEnv solo;
    RunEnv contended{0.25, 1.30};
    for (const MicroArchConfig &ua :
         {bigOoo(), smallIo(), gshareSmall, noUc, localBig}) {
        for (const RunEnv &env : {solo, contended}) {
            CoreConfig cc{fs, ua};
            PerfResult live = simulateCore(cc, tr, timed, warm, env);
            StructuralStream ss =
                buildStructuralStream(cc, env, tr, rt, timed, warm);
            EXPECT_EQ(ss.key, structuralFingerprint(ua, env));
            PerfResult rep =
                simulateCoreReplay(cc, rt, ss, timed, warm, env);
            EXPECT_TRUE(sameResult(live, rep)) << ua.name();
            PerfResult rep2 =
                simulateCoreReplay(cc, rt, ss, timed, warm, env);
            EXPECT_TRUE(sameResult(rep, rep2)) << ua.name();
        }
    }
}

TEST(Replay, MatchesLiveWithoutWarmup)
{
    // warmup = 0 exercises the no-snapshot path (MemSnap::warm stays
    // zeroed and must never be consumed).
    FeatureSet fs = FeatureSet::x86_64();
    Trace tr = traceFor("mcf", fs);
    CoreConfig cc{fs, bigOoo()};
    ReplayTrace rt = ReplayTrace::build(tr, 8000);
    StructuralStream ss =
        buildStructuralStream(cc, {}, tr, rt, 8000, 0);
    PerfResult live = simulateCore(cc, tr, 8000, 0);
    PerfResult rep = simulateCoreReplay(cc, rt, ss, 8000, 0);
    EXPECT_TRUE(sameResult(live, rep));
}

TEST(Replay, StreamSharedAcrossTimingConfigs)
{
    // The point of the memo: every timing-side parameter can change
    // without invalidating the structural stream. One stream, built
    // once, must serve both the widest out-of-order config and a
    // minimal in-order one that share the structural slice.
    FeatureSet fs = FeatureSet::x86_64();
    Trace tr = traceFor("astar", fs);
    const uint64_t timed = 6000, warm = 1500;
    ReplayTrace rt = ReplayTrace::build(tr, timed + warm);

    MicroArchConfig wide = bigOoo();
    MicroArchConfig tiny = smallIo();
    // Align the structural slice (caches + bpred); everything else
    // stays maximally different.
    tiny.bpred = wide.bpred;
    tiny.l1iKB = wide.l1iKB;
    tiny.l1dKB = wide.l1dKB;
    tiny.l2KB = wide.l2KB;
    tiny.l2Assoc = wide.l2Assoc;
    ASSERT_EQ(structuralFingerprint(wide, {}),
              structuralFingerprint(tiny, {}));

    StructuralStream ss = buildStructuralStream(
        CoreConfig{fs, wide}, {}, tr, rt, timed, warm);
    for (const MicroArchConfig &ua : {wide, tiny}) {
        CoreConfig cc{fs, ua};
        PerfResult live = simulateCore(cc, tr, timed, warm);
        PerfResult rep =
            simulateCoreReplay(cc, rt, ss, timed, warm);
        EXPECT_TRUE(sameResult(live, rep)) << ua.name();
    }
}

TEST(Replay, FingerprintCoversEveryStructuralField)
{
    // The memo key must change whenever a field feeding a structural
    // model changes (no aliasing), and must NOT change for
    // timing-only fields (or the memo would stop deduplicating).
    const MicroArchConfig base;
    const RunEnv env;
    uint64_t key = structuralFingerprint(base, env);

    auto perturbed = [&](auto &&set) {
        MicroArchConfig c = base;
        set(c);
        return structuralFingerprint(c, env);
    };

    // Cache-slice fields.
    EXPECT_NE(key, perturbed([](auto &c) { c.l1iKB *= 2; }));
    EXPECT_NE(key, perturbed([](auto &c) { c.l1iAssoc *= 2; }));
    EXPECT_NE(key, perturbed([](auto &c) { c.l1dKB *= 2; }));
    EXPECT_NE(key, perturbed([](auto &c) { c.l1dAssoc *= 2; }));
    EXPECT_NE(key, perturbed([](auto &c) { c.l2KB *= 2; }));
    EXPECT_NE(key, perturbed([](auto &c) { c.l2Assoc *= 2; }));
    // Environment fields (scale L2 sets and memory latency).
    EXPECT_NE(key, structuralFingerprint(base, RunEnv{0.25, 1.0}));
    EXPECT_NE(key, structuralFingerprint(base, RunEnv{1.0, 1.30}));
    // Predictor kind.
    EXPECT_NE(key,
              perturbed([](auto &c) { c.bpred = BpKind::Gshare; }));

    // Timing-only fields must leave the key unchanged.
    EXPECT_EQ(key, perturbed([](auto &c) { c.outOfOrder = false; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.width = 4; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.intAlus = 6; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.intMuls = 2; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.fpAlus = 4; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.iqSize = 128; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.robSize = 256; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.intPrf = 256; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.fpPrf = 256; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.lsqSize = 64; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.simpleDecoders = 4; }));
    // The uop cache's hit stream is config-independent (fixed
    // geometry); the enable bit is a timing-side gate.
    EXPECT_EQ(key, perturbed([](auto &c) { c.uopCache = false; }));
    EXPECT_EQ(key, perturbed([](auto &c) { c.uopFusion = false; }));

    // Individual slices react only to their own fields.
    MicroArchConfig c = base;
    c.bpred = BpKind::Local2Level;
    EXPECT_EQ(cacheSliceFingerprint(base, env),
              cacheSliceFingerprint(c, env));
    EXPECT_NE(bpredSliceFingerprint(base), bpredSliceFingerprint(c));
    c = base;
    c.l2KB *= 2;
    EXPECT_EQ(bpredSliceFingerprint(base), bpredSliceFingerprint(c));
    EXPECT_NE(cacheSliceFingerprint(base, env),
              cacheSliceFingerprint(c, env));
    EXPECT_EQ(uopCacheSliceFingerprint(base),
              uopCacheSliceFingerprint(c));
}

/** Slice-aligned config family spanning every lockstep-relevant
 * combination: in-order/out-of-order x uop cache x fusion x widths,
 * all sharing bigOoo's structural slice. */
std::vector<MicroArchConfig>
sliceFamily()
{
    MicroArchConfig base = bigOoo();
    auto aligned = [&](MicroArchConfig c) {
        c.bpred = base.bpred;
        c.l1iKB = base.l1iKB;
        c.l1iAssoc = base.l1iAssoc;
        c.l1dKB = base.l1dKB;
        c.l1dAssoc = base.l1dAssoc;
        c.l2KB = base.l2KB;
        c.l2Assoc = base.l2Assoc;
        return c;
    };
    MicroArchConfig noUc = base;
    noUc.uopCache = false;
    noUc.uopFusion = false;
    MicroArchConfig narrow = base;
    narrow.width = 1;
    narrow.intAlus = 1;
    narrow.robSize = 64;
    narrow.iqSize = 16;
    narrow.lsqSize = 8;
    MicroArchConfig io = aligned(smallIo());
    MicroArchConfig ioUc = io;
    ioUc.width = 2;
    ioUc.uopCache = true;
    ioUc.uopFusion = true;
    MicroArchConfig ioNoUc = io;
    ioNoUc.uopCache = false;
    ioNoUc.uopFusion = false;
    return {base, noUc, narrow, io, ioUc, ioNoUc};
}

TEST(Batch, LockstepMatchesPerCellBitForBit)
{
    // The acceptance property of the batched engine: one lockstep
    // walk over a mixed group (in-order and out-of-order cells, uop
    // cache and fusion on/off, different widths and windows) must
    // reproduce the per-cell replay engine — and thus the live
    // engine — byte for byte, in both run environments.
    FeatureSet fs = FeatureSet::x86_64();
    Trace tr = traceFor("sjeng", fs);
    const uint64_t timed = 9000, warm = 2000;
    ReplayTrace rt = ReplayTrace::build(tr, timed + warm);

    std::vector<MicroArchConfig> family = sliceFamily();
    std::vector<CoreConfig> cells;
    for (const MicroArchConfig &ua : family)
        cells.push_back({fs, ua});
    for (size_t i = 1; i < family.size(); i++) {
        ASSERT_EQ(structuralFingerprint(family[0], {}),
                  structuralFingerprint(family[i], {}));
    }

    for (const RunEnv &env : {RunEnv{}, RunEnv{0.25, 1.30}}) {
        StructuralStream ss = buildStructuralStream(
            cells[0], env, tr, rt, timed, warm);
        std::vector<PerfResult> batch = simulateCoreBatch(
            cells.data(), cells.size(), rt, ss, timed, warm, env);
        ASSERT_EQ(batch.size(), cells.size());
        for (size_t i = 0; i < cells.size(); i++) {
            PerfResult rep = simulateCoreReplay(cells[i], rt, ss,
                                                timed, warm, env);
            EXPECT_TRUE(sameResult(batch[i], rep))
                << family[i].name();
            PerfResult live =
                simulateCore(cells[i], tr, timed, warm, env);
            EXPECT_TRUE(sameResult(batch[i], live))
                << family[i].name();
        }
    }
}

TEST(Batch, MatchesPerCellWithoutWarmup)
{
    // warmup = 0 exercises the zero-snapshot baseline (no combo-lane
    // or cycle snapshot is ever taken).
    FeatureSet fs = FeatureSet::x86_64();
    Trace tr = traceFor("mcf", fs);
    ReplayTrace rt = ReplayTrace::build(tr, 8000);
    std::vector<MicroArchConfig> family = sliceFamily();
    std::vector<CoreConfig> cells;
    for (const MicroArchConfig &ua : family)
        cells.push_back({fs, ua});
    StructuralStream ss =
        buildStructuralStream(cells[0], {}, tr, rt, 8000, 0);
    std::vector<PerfResult> batch = simulateCoreBatch(
        cells.data(), cells.size(), rt, ss, 8000, 0);
    for (size_t i = 0; i < cells.size(); i++) {
        PerfResult rep =
            simulateCoreReplay(cells[i], rt, ss, 8000, 0);
        EXPECT_TRUE(sameResult(batch[i], rep)) << family[i].name();
    }
}

TEST(Batch, CellOrderIsIrrelevant)
{
    // Cells only share read-only inputs, so permuting the group (and
    // splitting it down to singletons) cannot change any cell's
    // result.
    FeatureSet fs = FeatureSet::x86_64();
    Trace tr = traceFor("astar", fs);
    const uint64_t timed = 6000, warm = 1500;
    ReplayTrace rt = ReplayTrace::build(tr, timed + warm);
    std::vector<MicroArchConfig> family = sliceFamily();
    std::vector<CoreConfig> cells;
    for (const MicroArchConfig &ua : family)
        cells.push_back({fs, ua});
    StructuralStream ss = buildStructuralStream(cells[0], {}, tr,
                                                rt, timed, warm);
    std::vector<PerfResult> fwd = simulateCoreBatch(
        cells.data(), cells.size(), rt, ss, timed, warm);

    std::vector<CoreConfig> rev(cells.rbegin(), cells.rend());
    std::vector<PerfResult> bwd = simulateCoreBatch(
        rev.data(), rev.size(), rt, ss, timed, warm);
    for (size_t i = 0; i < cells.size(); i++) {
        EXPECT_TRUE(
            sameResult(fwd[i], bwd[cells.size() - 1 - i]))
            << family[i].name();
        // A singleton batch is the degenerate case the campaign's
        // fallback path uses.
        std::vector<PerfResult> one =
            simulateCoreBatch(&cells[i], 1, rt, ss, timed, warm);
        EXPECT_TRUE(sameResult(fwd[i], one[0])) << family[i].name();
    }
}

TEST(Batch, ScalarKernelMatchesVectorKernel)
{
    // The AVX-512 kernel (taken by default on capable CPUs when the
    // 32-bit stamp bound holds) and the portable scalar tile kernel
    // must agree bit for bit; CISA_BATCH_SIMD=0 forces the scalar
    // path. On hosts without AVX-512 both runs take the scalar
    // kernel and the test degenerates to determinism.
    FeatureSet fs = FeatureSet::x86_64();
    Trace tr = traceFor("gobmk", fs);
    const uint64_t timed = 7000, warm = 1500;
    ReplayTrace rt = ReplayTrace::build(tr, timed + warm);
    std::vector<MicroArchConfig> family = sliceFamily();
    std::vector<CoreConfig> cells;
    for (const MicroArchConfig &ua : family)
        cells.push_back({fs, ua});
    StructuralStream ss = buildStructuralStream(cells[0], {}, tr,
                                                rt, timed, warm);

    std::vector<PerfResult> vec = simulateCoreBatch(
        cells.data(), cells.size(), rt, ss, timed, warm);
    setenv("CISA_BATCH_SIMD", "0", 1);
    std::vector<PerfResult> sca = simulateCoreBatch(
        cells.data(), cells.size(), rt, ss, timed, warm);
    unsetenv("CISA_BATCH_SIMD");
    for (size_t i = 0; i < cells.size(); i++)
        EXPECT_TRUE(sameResult(vec[i], sca[i])) << family[i].name();
}

TEST(UConfig, FingerprintSeparatesL1Associativity)
{
    // l1iAssoc/l1dAssoc feed the cache model, so two configs
    // differing only there must not collide (they would alias in
    // every fingerprint-keyed cache, not just the replay memo).
    MicroArchConfig a;
    MicroArchConfig b = a;
    b.l1iAssoc = a.l1iAssoc * 2;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    b = a;
    b.l1dAssoc = a.l1dAssoc * 2;
    EXPECT_NE(a.fingerprint(), b.fingerprint());
}

/** Hand-built single-uop op helpers for store-buffer tests. */
DynOp
mkStore(uint64_t pc, uint64_t addr, uint8_t size)
{
    DynOp op;
    op.pc = pc;
    op.len = 4;
    op.form = MemForm::Store;
    op.cls = MicroClass::Store;
    op.maddr = addr;
    op.msize = size;
    op.src1 = 1;
    return op;
}

DynOp
mkLoad(uint64_t pc, uint64_t addr, uint8_t size)
{
    DynOp op;
    op.pc = pc;
    op.len = 4;
    op.form = MemForm::Load;
    op.cls = MicroClass::Load;
    op.maddr = addr;
    op.msize = size;
    op.dst = 2;
    return op;
}

TEST(Engine, StoreBufferForwardsOnlyCoveringStores)
{
    // A load forwards iff a buffered store fully covers its bytes
    // and the store is at most 16 stores in the past (ring size).
    Trace tr;
    uint64_t pc = 0x1000;
    tr.ops.push_back(mkStore(pc += 4, 0x8000, 8));
    tr.ops.push_back(mkLoad(pc += 4, 0x8000, 8));  // covered: fwd
    tr.ops.push_back(mkLoad(pc += 4, 0x8004, 8));  // straddles: no
    tr.ops.push_back(mkLoad(pc += 4, 0x8004, 4));  // inside: fwd
    // 16 more stores push the 0x8000 entry out of the ring.
    for (int i = 0; i < 16; i++)
        tr.ops.push_back(mkStore(pc += 4, 0x20000 + uint64_t(i) * 64,
                                 8));
    tr.ops.push_back(mkLoad(pc += 4, 0x8000, 8));  // evicted: no
    tr.ops.push_back(mkLoad(pc += 4, 0x20000, 8)); // resident: fwd

    uint64_t total = 0;
    for (const DynOp &op : tr.ops)
        total += op.uops;
    CoreConfig cc{FeatureSet::x86_64(), bigOoo()};
    // One exact lap, no warmup: counters cover each op once.
    PerfResult r = simulateCore(cc, tr, total, 0);
    EXPECT_EQ(r.stats.macroOps, tr.ops.size());
    EXPECT_EQ(r.stats.sbForwards, 3u);
    // Every load and store allocates an LSQ slot; only non-forwarded
    // loads and all stores touch the D-cache.
    EXPECT_EQ(r.stats.lsqOps, 22u);
}

TEST(PerfStats, WarmupWindowDiffInvariants)
{
    // sim(T+W, 0) and sim(T, W) execute the identical step sequence;
    // the second subtracts the warmup prefix. So every counter of
    // the windowed run is bounded by the full run, and the uop gap
    // equals the warmup prefix (to within one op's uops of slack).
    FeatureSet fs = FeatureSet::x86_64();
    Trace tr = traceFor("gobmk", fs);
    CoreConfig cc{fs, bigOoo()};
    const uint64_t timed = 6000, warm = 3000;
    PerfResult full = simulateCore(cc, tr, timed + warm, 0);
    PerfResult tail = simulateCore(cc, tr, timed, warm);

    EXPECT_LE(tail.cycles, full.cycles);
    EXPECT_LE(tail.stats.macroOps, full.stats.macroOps);
    EXPECT_LE(tail.stats.uops, full.stats.uops);
    EXPECT_LE(tail.stats.issuedUops, full.stats.issuedUops);
    EXPECT_LE(tail.stats.l1dAccesses, full.stats.l1dAccesses);
    EXPECT_LE(tail.stats.l2Misses, full.stats.l2Misses);
    EXPECT_LE(tail.stats.bpLookups, full.stats.bpLookups);
    EXPECT_LE(tail.stats.btbMisses, full.stats.btbMisses);
    EXPECT_LE(tail.stats.sbForwards, full.stats.sbForwards);
    EXPECT_LE(tail.stats.regReads, full.stats.regReads);

    uint64_t gap = full.stats.uops - tail.stats.uops;
    EXPECT_GE(gap, warm);
    EXPECT_LT(gap, warm + 300); // one op overshoot at most

    // diff(x, x) must be exactly zero everywhere.
    PerfStats zero = PerfStats::diff(full.stats, full.stats);
    PerfStats fresh{};
    EXPECT_EQ(std::memcmp(&zero, &fresh, sizeof(PerfStats)), 0);
}

} // namespace
} // namespace cisa
