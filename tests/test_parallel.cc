/**
 * @file
 * Tests of the parallel-execution layer and the determinism
 * guarantee of the parallel campaign: parallelFor semantics (empty
 * range, fewer items than threads, full coverage, exception
 * propagation, nesting), the task-queue API, and byte-identical
 * slab computation across thread counts. The ctest suite runs this
 * binary under CISA_THREADS=4 (and TSan when CISA_ENABLE_TSAN is
 * on) so races on the campaign/search hot path are caught.
 */

#include <cstdlib>

// Must run before any Campaign::get() in this process.
namespace
{
struct EnvSetup
{
    EnvSetup()
    {
        setenv("CISA_SIM_UOPS", "700", 1);
        setenv("CISA_SIM_WARMUP", "150", 1);
        setenv("CISA_DSE_CACHE", "/tmp/cisa_parallel_cache.bin", 1);
        // Exercise the pool even where ctest didn't set the knob;
        // never shrink an explicit setting.
        setenv("CISA_THREADS", "4", 0);
    }
} env_setup;
} // namespace

#include <atomic>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "explore/campaign.hh"

namespace cisa
{
namespace
{

TEST(ParallelFor, EmptyRangeRunsNothing)
{
    std::atomic<int> calls{0};
    parallelFor(0, [&](uint64_t) { calls++; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    constexpr uint64_t n = 10007; // prime: uneven chunking
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, [&](uint64_t i) { hits[i]++; });
    for (uint64_t i = 0; i < n; i++)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, FewerItemsThanThreads)
{
    ASSERT_GE(ThreadPool::get().threads(), 2)
        << "run with CISA_THREADS >= 2";
    std::vector<std::atomic<int>> hits(3);
    parallelFor(3, [&](uint64_t i) { hits[i]++; });
    for (int i = 0; i < 3; i++)
        EXPECT_EQ(hits[size_t(i)].load(), 1);
}

TEST(ParallelFor, ExceptionPropagatesAndPoolSurvives)
{
    EXPECT_THROW(
        parallelFor(1000,
                    [&](uint64_t i) {
                        if (i == 37)
                            throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool stays usable after a failed loop.
    std::atomic<int> calls{0};
    parallelFor(64, [&](uint64_t) { calls++; });
    EXPECT_EQ(calls.load(), 64);
}

TEST(ParallelFor, NestedLoopsDoNotDeadlock)
{
    std::atomic<int> total{0};
    parallelFor(4, [&](uint64_t) {
        parallelFor(100, [&](uint64_t) { total++; });
    });
    EXPECT_EQ(total.load(), 400);
}

TEST(ParallelFor, ScopedLimitOneIsSerialAndOrdered)
{
    ScopedThreadLimit serial(1);
    std::vector<uint64_t> order; // unsynchronized: serial contract
    parallelFor(257, [&](uint64_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 257u);
    for (uint64_t i = 0; i < order.size(); i++)
        ASSERT_EQ(order[i], i);
}

TEST(TaskGroup, RunsAllTasks)
{
    std::atomic<int> done{0};
    TaskGroup g;
    for (int t = 0; t < 100; t++)
        g.run([&] { done++; });
    g.wait();
    EXPECT_EQ(done.load(), 100);
}

TEST(TaskGroup, WaitRethrowsTaskError)
{
    TaskGroup g;
    g.run([] { throw std::runtime_error("task failed"); });
    EXPECT_THROW(g.wait(), std::runtime_error);
}

TEST(ThreadPool, PrivatePoolAndThreadKnob)
{
    EXPECT_GE(parallelThreads(), 1);
    ThreadPool pool(3);
    EXPECT_EQ(pool.threads(), 3);
    std::vector<std::atomic<int>> hits(500);
    pool.parallelFor(500, [&](uint64_t i) { hits[i]++; });
    for (int i = 0; i < 500; i++)
        ASSERT_EQ(hits[size_t(i)].load(), 1);
}

/**
 * The acceptance property of the whole PR: one slab computed
 * serially (CISA_THREADS=1 semantics via ScopedThreadLimit) and on
 * the full pool must produce byte-identical PhasePerf tables.
 */
TEST(CampaignDeterminism, SlabIsBitIdenticalAcrossThreadCounts)
{
    int slab = FeatureSet::thumbLike().id();
    std::vector<PhasePerf> serial;
    {
        ScopedThreadLimit limit(1);
        serial = computeSlabPerf(slab);
    }
    std::vector<PhasePerf> parallel = computeSlabPerf(slab);
    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(),
              size_t(DesignPoint::kUarchCount) *
                  size_t(phaseCount()));
    static_assert(std::is_trivially_copyable_v<PhasePerf>);
    EXPECT_EQ(std::memcmp(serial.data(), parallel.data(),
                          serial.size() * sizeof(PhasePerf)),
              0);
}

/**
 * The acceptance property of the replay engine: the memoized
 * structural-stream path must reproduce the live per-cell path byte
 * for byte over a whole slab — every (uarch, phase, environment)
 * cell of a full ISA — on the full thread pool.
 */
TEST(CampaignDeterminism, ReplayEngineSlabIsBitIdenticalToLive)
{
    // One composite slab and one vendor slab (vendor traces are
    // code-size-adjusted before packing, a path worth covering).
    for (int slab : {FeatureSet::thumbLike().id(), 27}) {
        std::vector<PhasePerf> live =
            computeSlabPerf(slab, SlabEngine::Live);
        std::vector<PhasePerf> replay =
            computeSlabPerf(slab, SlabEngine::Replay);
        ASSERT_EQ(live.size(), replay.size());
        EXPECT_EQ(std::memcmp(live.data(), replay.data(),
                              live.size() * sizeof(PhasePerf)),
                  0)
            << "slab " << slab;
    }
}

TEST(CampaignDeterminism, ConcurrentAtOnSameSlabIsConsistent)
{
    Campaign &camp = Campaign::get();
    DesignPoint dp = DesignPoint::composite(
        FeatureSet::thumbLike().id(), 17);
    // Hammer at() for an uncomputed-or-cached slab from many tasks;
    // every reader must observe the same published cell.
    const PhasePerf &first = camp.at(dp, 3);
    float t0 = first.timePerRun;
    std::atomic<int> mismatches{0};
    parallelFor(64, [&](uint64_t) {
        if (camp.at(dp, 3).timePerRun != t0)
            mismatches++;
    });
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_TRUE(camp.slabReady(Campaign::slabOf(dp)));
}

} // namespace
} // namespace cisa
