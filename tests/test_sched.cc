/**
 * @file
 * Tests of the post-RA list scheduler: semantics preservation across
 * feature sets (explicitly, in addition to the equivalence suite),
 * the in-order latency-hiding win, dependence safety (adc chains,
 * cmp/branch pairs, memory order), and determinism.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "compiler/exec.hh"
#include "compiler/interp.hh"
#include "compiler/passes/sched.hh"
#include "uarch/core.hh"
#include "workloads/profiles.hh"
#include "workloads/synth.hh"

namespace cisa
{
namespace
{

IrModule
smallModule(int phase)
{
    PhaseProfile p = allPhases()[size_t(phase)];
    p.targetDynOps = 15000;
    p.outerTrip = 2;
    return buildPhase(p);
}

TEST(Sched, PreservesSemanticsEverywhere)
{
    IrModule m = smallModule(7); // bzip2: adc chains + RMW + calls
    for (int f = 0; f < FeatureSet::count(); f += 3) {
        FeatureSet fs = FeatureSet::byId(f);
        CompileOptions on, off;
        on.target = off.target = fs;
        off.enableSchedule = false;
        IrModule ir_on, ir_off;
        MachineProgram p_on = compile(m, on, nullptr, &ir_on);
        MachineProgram p_off = compile(m, off, nullptr, &ir_off);
        MemImage i1 = MemImage::build(ir_on, fs.widthBits());
        MemImage i2 = MemImage::build(ir_off, fs.widthBits());
        ExecResult a = executeMachine(p_on, i1);
        ExecResult b = executeMachine(p_off, i2);
        EXPECT_EQ(a.retVal, b.retVal) << fs.name();
        EXPECT_EQ(a.intChecksum, b.intChecksum) << fs.name();
        EXPECT_DOUBLE_EQ(a.fpSum, b.fpSum) << fs.name();
    }
}

TEST(Sched, ActuallyReorders)
{
    IrModule m = smallModule(14); // hmmer
    CompileOptions on, off;
    on.target = off.target = FeatureSet::x86_64();
    off.enableSchedule = false;
    CompileReport rep;
    MachineProgram p_on = compile(m, on, &rep);
    MachineProgram p_off = compile(m, off);
    EXPECT_GT(rep.blocksScheduled, 0);
    // Same instruction multiset, different order somewhere.
    EXPECT_EQ(p_on.stats.instrs, p_off.stats.instrs);
    bool differs = false;
    for (size_t f = 0; f < p_on.funcs.size() && !differs; f++) {
        for (size_t b = 0; b < p_on.funcs[f].blocks.size(); b++) {
            const auto &ba = p_on.funcs[f].blocks[b].instrs;
            const auto &bb = p_off.funcs[f].blocks[b].instrs;
            for (size_t k = 0; k < ba.size(); k++) {
                if (ba[k].str() != bb[k].str()) {
                    differs = true;
                    break;
                }
            }
        }
    }
    EXPECT_TRUE(differs);
}

TEST(Sched, HelpsInOrderCores)
{
    MicroArchConfig io;
    for (const auto &c : MicroArchConfig::enumerate()) {
        if (!c.outOfOrder && c.width == 2 &&
            c.bpred == BpKind::Tournament && c.uopCache) {
            io = c;
            break;
        }
    }
    double gain = 0;
    for (int ph : {14, 16, 30}) { // hmmer x2, gobmk-ish
        IrModule m = smallModule(ph);
        double ipcs[2];
        for (bool sched : {false, true}) {
            CompileOptions o;
            o.target = FeatureSet::x86_64();
            o.enableSchedule = sched;
            IrModule ir;
            MachineProgram p = compile(m, o, nullptr, &ir);
            MemImage img = MemImage::build(ir, 64);
            Trace tr;
            executeMachine(p, img, 1ULL << 30, &tr);
            CoreConfig cc{o.target, io};
            ipcs[sched] = simulateCore(cc, tr, 5000, 1200).ipc;
        }
        gain += ipcs[1] / ipcs[0] - 1.0;
    }
    EXPECT_GT(gain / 3.0, 0.0);
}

TEST(Sched, TerminatorStaysLast)
{
    IrModule m = smallModule(40); // sjeng
    CompileOptions o;
    o.target = FeatureSet::parse("x86-64D-64W-F");
    MachineProgram p = compile(m, o);
    for (const auto &f : p.funcs) {
        for (const auto &b : f.blocks) {
            ASSERT_FALSE(b.instrs.empty());
            EXPECT_TRUE(isBranchOp(b.instrs.back().op));
            for (size_t k = 0; k + 1 < b.instrs.size(); k++)
                EXPECT_FALSE(isBranchOp(b.instrs[k].op));
        }
    }
}

TEST(Sched, Deterministic)
{
    IrModule m = smallModule(3);
    CompileOptions o;
    o.target = FeatureSet::x86_64();
    MachineProgram a = compile(m, o);
    MachineProgram b = compile(m, o);
    EXPECT_EQ(a.print(), b.print());
}

TEST(Sched, DirectRunOnHandBuiltBlock)
{
    // load; long dependent chain; independent work — the scheduler
    // must pull independent work between the load and its use.
    MachineFunction mf;
    auto add = [&](Op op, int dst, int src, int64_t disp = 0) {
        MachineInstr i;
        i.op = op;
        i.opBits = 64;
        i.dst = dst;
        if (op == Op::Load) {
            i.form = MemForm::Load;
            i.mem.base = kSpReg;
            i.mem.disp = disp;
        } else if (op != Op::MovImm) {
            i.src1 = src;
        } else {
            i.imm = disp;
            i.hasImm = true;
        }
        return i;
    };
    MachineBlock b;
    b.instrs.push_back(add(Op::Load, 0, -1, 8)); // r0 = [sp+8]
    b.instrs.push_back(add(Op::Add, 1, 0));      // r1 += r0 (dep)
    b.instrs.push_back(add(Op::MovImm, 2, -1, 5)); // independent
    b.instrs.push_back(add(Op::MovImm, 3, -1, 6)); // independent
    MachineInstr ret;
    ret.op = Op::Ret;
    ret.opBits = 64;
    b.instrs.push_back(ret);
    mf.blocks.push_back(b);

    SchedStats st = runSchedule(mf);
    EXPECT_EQ(st.blocksScheduled, 1);
    const auto &out = mf.blocks[0].instrs;
    // The load goes first; the dependent add must not directly
    // follow it (independent movs fill the gap).
    EXPECT_EQ(out[0].op, Op::Load);
    EXPECT_EQ(out[1].op, Op::MovImm);
    EXPECT_EQ(out.back().op, Op::Ret);
}

} // namespace
} // namespace cisa
