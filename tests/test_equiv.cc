/**
 * @file
 * The compiler's correctness oracle: for every viable feature set,
 * compile every workload phase-family representative and check that
 * machine execution reproduces the IR interpreter's observable
 * result exactly (integer checksum, return value) and the FP store
 * sum bit-for-bit (vectorization keeps per-element operations exact;
 * reductions are compared against the *transformed* IR, which shares
 * the vector association).
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "compiler/exec.hh"
#include "compiler/interp.hh"
#include "workloads/profiles.hh"
#include "workloads/synth.hh"

namespace cisa
{
namespace
{

/** One representative phase per benchmark keeps runtime sane. */
std::vector<int>
representativePhases()
{
    std::vector<int> idx;
    int at = 0;
    for (const auto &b : specSuite()) {
        idx.push_back(at);          // first phase of each benchmark
        at += int(b.phases.size());
    }
    return idx;
}

struct EquivCase
{
    int featureId;
    int phase;
};

class EquivTest : public ::testing::TestWithParam<EquivCase>
{};

TEST_P(EquivTest, MachineMatchesIr)
{
    EquivCase c = GetParam();
    FeatureSet fs = FeatureSet::byId(c.featureId);
    PhaseProfile prof = allPhases()[size_t(c.phase)];
    // Shrink the run so the full 26x8 matrix stays fast.
    prof.targetDynOps = 20000;
    prof.outerTrip = 3;
    IrModule m = buildPhase(prof);

    CompileOptions opts;
    opts.target = fs;
    IrModule transformed;
    MachineProgram prog = compile(m, opts, nullptr, &transformed);

    MemImage ref_img = MemImage::build(transformed, fs.widthBits());
    ExecResult ref = interpret(transformed, ref_img);
    ASSERT_FALSE(ref.ranOut);

    MemImage img = MemImage::build(transformed, fs.widthBits());
    ExecResult got = executeMachine(prog, img);
    ASSERT_FALSE(got.ranOut);

    EXPECT_EQ(got.retVal, ref.retVal) << fs.name() << " "
                                      << prof.name();
    EXPECT_EQ(got.intChecksum, ref.intChecksum)
        << fs.name() << " " << prof.name();
    EXPECT_DOUBLE_EQ(got.fpSum, ref.fpSum)
        << fs.name() << " " << prof.name();
}

std::vector<EquivCase>
allCases()
{
    std::vector<EquivCase> cases;
    for (int f = 0; f < FeatureSet::count(); f++) {
        for (int p : representativePhases())
            cases.push_back({f, p});
    }
    return cases;
}

std::string
caseName(const ::testing::TestParamInfo<EquivCase> &info)
{
    FeatureSet fs = FeatureSet::byId(info.param.featureId);
    std::string n = fs.name() + "_" +
                    allPhases()[size_t(info.param.phase)].name();
    for (auto &ch : n) {
        if (ch == '-' || ch == '.')
            ch = '_';
    }
    return n;
}

INSTANTIATE_TEST_SUITE_P(AllFeatureSets, EquivTest,
                         ::testing::ValuesIn(allCases()), caseName);

/** The memory image must not depend on who executes it. */
TEST(Equiv, ImageDeterminism)
{
    const IrModule &m = phaseModule(0);
    MemImage a = MemImage::build(m, 64);
    MemImage b = MemImage::build(m, 64);
    EXPECT_EQ(a.mem, b.mem);
    EXPECT_EQ(a.regionBase, b.regionBase);
}

/** Program runs must be deterministic end to end. */
TEST(Equiv, ExecutionDeterminism)
{
    PhaseProfile prof = allPhases()[10];
    prof.targetDynOps = 10000;
    IrModule m = buildPhase(prof);
    CompileOptions opts;
    opts.target = FeatureSet::superset();
    MachineProgram prog = compile(m, opts);
    MemImage i1 = MemImage::build(m, 64);
    MemImage i2 = MemImage::build(m, 64);
    ExecResult a = executeMachine(prog, i1);
    ExecResult b = executeMachine(prog, i2);
    EXPECT_EQ(a.retVal, b.retVal);
    EXPECT_EQ(a.intChecksum, b.intChecksum);
    EXPECT_EQ(a.dynInstrs, b.dynInstrs);
}

} // namespace
} // namespace cisa
