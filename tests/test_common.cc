/**
 * @file
 * Unit tests for the common substrate: RNG determinism, statistics
 * helpers, tables, and binary serialization round-trips.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace cisa
{
namespace
{

TEST(Rng, Deterministic)
{
    Pcg32 a(123, 7);
    Pcg32 b(123, 7);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StreamsDiffer)
{
    Pcg32 a(123, 7);
    Pcg32 b(123, 8);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowInRange)
{
    Pcg32 r(9, 1);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Pcg32 r(5, 2);
    double sum = 0;
    for (int i = 0; i < 10000; i++) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkIndependence)
{
    Pcg32 a(77, 1);
    Pcg32 c1 = a.fork(1);
    Pcg32 c2 = a.fork(2);
    int same = 0;
    for (int i = 0; i < 64; i++)
        same += c1.next() == c2.next();
    EXPECT_LT(same, 4);
}

TEST(Stats, Means)
{
    std::vector<double> xs = {1.0, 2.0, 4.0};
    EXPECT_NEAR(mean(xs), 7.0 / 3.0, 1e-12);
    EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
    EXPECT_NEAR(harmonicMean(xs), 3.0 / 1.75, 1e-12);
    EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, Accum)
{
    Accum a;
    a.add(3.0);
    a.add(1.0);
    a.add(2.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.min(), 1.0);
    EXPECT_EQ(a.max(), 3.0);
    EXPECT_NEAR(a.mean(), 2.0, 1e-12);
}

TEST(Stats, HistogramPercentile)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; i++)
        h.add(double(i) + 0.5);
    EXPECT_NEAR(h.percentile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.percentile(0.9), 90.0, 2.0);
    EXPECT_EQ(h.total(), 100u);
}

TEST(Table, RendersAligned)
{
    Table t("demo");
    t.header({"a", "bb"});
    t.row({"1", "2"});
    t.row({"333", "4"});
    std::string s = t.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("| 333 |"), std::string::npos);
}

TEST(Table, NumbersFormat)
{
    EXPECT_EQ(Table::num(1.5, 2), "1.50");
    EXPECT_EQ(Table::num(int64_t(42)), "42");
    EXPECT_EQ(Table::pct(0.123), "+12.3%");
}

TEST(Serialize, RoundTrip)
{
    std::string path = "/tmp/cisa_ser_test.bin";
    {
        BinWriter w(path);
        ASSERT_TRUE(w.ok());
        w.u32(7);
        w.u64(1ULL << 40);
        w.f64(3.25);
        w.str("hello");
        w.vecF64({1.0, 2.0, 3.0});
        ASSERT_TRUE(w.ok());
    }
    {
        BinReader r(path);
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r.u32(), 7u);
        EXPECT_EQ(r.u64(), 1ULL << 40);
        EXPECT_EQ(r.f64(), 3.25);
        EXPECT_EQ(r.str(), "hello");
        auto v = r.vecF64();
        ASSERT_EQ(v.size(), 3u);
        EXPECT_EQ(v[1], 2.0);
        EXPECT_TRUE(r.ok());
    }
    std::remove(path.c_str());
}

TEST(Serialize, MissingFileNotOk)
{
    BinReader r("/tmp/definitely_missing_cisa_file.bin");
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, CorruptStringLengthRejectedWithoutAllocation)
{
    // A length header larger than the file must fail cleanly before
    // the allocator is asked for it — a flipped bit in an 8-byte
    // length is otherwise a multi-GiB allocation.
    std::string path = "/tmp/cisa_ser_corrupt_str.bin";
    {
        BinWriter w(path);
        w.u64(1ULL << 40); // claims a 1 TiB string in a tiny file
        w.u32(0xDEAD);
    }
    BinReader r(path);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
    std::remove(path.c_str());
}

TEST(Serialize, CorruptVectorLengthRejectedWithoutAllocation)
{
    std::string path = "/tmp/cisa_ser_corrupt_vec.bin";
    {
        BinWriter w(path);
        w.u64(1ULL << 28); // 2 GiB of doubles in a 16-byte file
        w.f64(1.0);
    }
    BinReader r(path);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.vecF64().empty());
    EXPECT_FALSE(r.ok());
    std::remove(path.c_str());
}

TEST(Serialize, TruncatedPayloadAfterValidLength)
{
    // Length says 5 elements but only 2 are on disk: the read fails
    // (error flag) instead of returning a silently short vector.
    std::string path = "/tmp/cisa_ser_trunc_vec.bin";
    {
        BinWriter w(path);
        w.u64(5);
        w.f64(1.0);
        w.f64(2.0);
    }
    BinReader r(path);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r.vecF64().empty());
    EXPECT_FALSE(r.ok());
    std::remove(path.c_str());
}

TEST(Env, Defaults)
{
    EXPECT_EQ(envInt("CISA_NOT_SET_XYZ", 42), 42);
    EXPECT_EQ(envStr("CISA_NOT_SET_XYZ", "dflt"), "dflt");
    EXPECT_GT(simUopBudget(), 0u);
}

TEST(Env, ParsesValidIntegers)
{
    setenv("CISA_ENV_TEST", "123", 1);
    EXPECT_EQ(envInt("CISA_ENV_TEST", 7), 123);
    setenv("CISA_ENV_TEST", "-5", 1);
    EXPECT_EQ(envInt("CISA_ENV_TEST", 7), -5);
    setenv("CISA_ENV_TEST", "  88  ", 1); // surrounding whitespace ok
    EXPECT_EQ(envInt("CISA_ENV_TEST", 7), 88);
    unsetenv("CISA_ENV_TEST");
}

TEST(Env, MalformedFallsBackToDefault)
{
    for (const char *bad :
         {"abc", "12abc", "1.5", "0x10", "--3", "9e4", " "}) {
        setenv("CISA_ENV_TEST", bad, 1);
        EXPECT_EQ(envInt("CISA_ENV_TEST", 7), 7) << bad;
        EXPECT_EQ(envIntRange("CISA_ENV_TEST", 7, 0, 100), 7) << bad;
    }
    // Magnitude beyond int64 is malformed, not saturated.
    setenv("CISA_ENV_TEST", "99999999999999999999999", 1);
    EXPECT_EQ(envInt("CISA_ENV_TEST", 7), 7);
    unsetenv("CISA_ENV_TEST");
}

TEST(Env, OutOfRangeFallsBackToDefault)
{
    // The contract is default, NOT clamp: an out-of-range value is
    // a config error and silently clamping would hide it.
    setenv("CISA_ENV_TEST", "1000", 1);
    EXPECT_EQ(envIntRange("CISA_ENV_TEST", 7, 0, 100), 7);
    setenv("CISA_ENV_TEST", "-1", 1);
    EXPECT_EQ(envIntRange("CISA_ENV_TEST", 7, 0, 100), 7);
    setenv("CISA_ENV_TEST", "100", 1); // inclusive bounds
    EXPECT_EQ(envIntRange("CISA_ENV_TEST", 7, 0, 100), 100);
    unsetenv("CISA_ENV_TEST");
}

TEST(Env, KnobsSurviveGarbageValues)
{
    // Every numeric CISA_* knob must yield its documented default
    // when set to garbage — a typo'd environment never crashes or
    // silently zeroes a simulation parameter.
    for (const char *name :
         {"CISA_SIM_UOPS", "CISA_SIM_WARMUP", "CISA_SEARCH_RESTARTS",
          "CISA_SERVE_QUEUE", "CISA_SERVE_WORKERS",
          "CISA_SERVE_CACHE"}) {
        setenv(name, "not-a-number", 1);
    }
    EXPECT_EQ(simUopBudget(), 6000u);
    EXPECT_EQ(simWarmupUops(), 1500u);
    EXPECT_EQ(searchRestarts(), 2);
    EXPECT_EQ(serveQueueBound(), 64);
    EXPECT_EQ(serveWorkers(), 2);
    EXPECT_EQ(serveCacheEntries(), 256);
    for (const char *name :
         {"CISA_SIM_UOPS", "CISA_SIM_WARMUP", "CISA_SEARCH_RESTARTS",
          "CISA_SERVE_QUEUE", "CISA_SERVE_WORKERS",
          "CISA_SERVE_CACHE"}) {
        unsetenv(name);
    }
}

TEST(Env, BatchKnobs)
{
    // Defaults: batching on, 64-cell chunks.
    unsetenv("CISA_BATCH");
    unsetenv("CISA_BATCH_WIDTH");
    EXPECT_TRUE(batchEnabled());
    EXPECT_EQ(batchWidth(), 64);

    setenv("CISA_BATCH", "0", 1);
    EXPECT_FALSE(batchEnabled());
    setenv("CISA_BATCH", "1", 1);
    EXPECT_TRUE(batchEnabled());
    setenv("CISA_BATCH", "garbage", 1);
    EXPECT_TRUE(batchEnabled()); // malformed -> documented default

    setenv("CISA_BATCH_WIDTH", "4", 1);
    EXPECT_EQ(batchWidth(), 4);
    // Below the floor of 2 a "batch" is a per-cell walk; default,
    // not clamp, per the strict-parse contract.
    setenv("CISA_BATCH_WIDTH", "1", 1);
    EXPECT_EQ(batchWidth(), 64);
    setenv("CISA_BATCH_WIDTH", "nope", 1);
    EXPECT_EQ(batchWidth(), 64);

    // The vector-kernel gate: default on, 0 forces the scalar tile
    // kernel (results are bit-identical either way).
    unsetenv("CISA_BATCH_SIMD");
    EXPECT_TRUE(batchSimdEnabled());
    setenv("CISA_BATCH_SIMD", "0", 1);
    EXPECT_FALSE(batchSimdEnabled());
    setenv("CISA_BATCH_SIMD", "bogus", 1);
    EXPECT_TRUE(batchSimdEnabled());

    unsetenv("CISA_BATCH");
    unsetenv("CISA_BATCH_WIDTH");
    unsetenv("CISA_BATCH_SIMD");
}

TEST(ByteCodec, RoundTrip)
{
    ByteWriter w;
    w.u8(7);
    w.u16(300);
    w.u32(1u << 30);
    w.u64(1ULL << 40);
    w.f32(1.5f);
    w.f64(-2.25);
    w.str("hello");
    std::vector<uint8_t> buf = w.take();

    ByteReader r(buf);
    EXPECT_EQ(r.u8(), 7);
    EXPECT_EQ(r.u16(), 300);
    EXPECT_EQ(r.u32(), 1u << 30);
    EXPECT_EQ(r.u64(), 1ULL << 40);
    EXPECT_EQ(r.f32(), 1.5f);
    EXPECT_EQ(r.f64(), -2.25);
    EXPECT_EQ(r.str(), "hello");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(ByteCodec, OverrunSetsErrorNotCrash)
{
    ByteWriter w;
    w.u16(99);
    std::vector<uint8_t> buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.u64(), 0u); // short read: zero value, error flag
    EXPECT_FALSE(r.ok());
}

TEST(ByteCodec, OversizedStringRejected)
{
    ByteWriter w;
    w.u32(1u << 20); // claims a 1 MiB string in a 4-byte buffer
    std::vector<uint8_t> buf = w.take();
    ByteReader r(buf);
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
}

TEST(Logging, Strfmt)
{
    EXPECT_EQ(strfmt("%d-%s", 5, "x"), "5-x");
}

} // namespace
} // namespace cisa
