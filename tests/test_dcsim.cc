/**
 * @file
 * Tests of the datacenter-scale discrete-event scheduler: the
 * determinism contract (bit-identical placement traces and summary
 * JSON at any thread count and any parallel-batch threshold),
 * conservation invariants (every job placed once per phase, tiles
 * never oversubscribed, the wait queue only forms at saturation),
 * and the policy/baseline machinery the scale bench relies on.
 */

#include <cstdio>
#include <cstdlib>

// Must run before any Campaign::get() in this process. The tiny
// budget keeps slab computation to seconds; the low parallel-batch
// threshold makes even small test runs take the parallel scoring
// path under the thread limits the tests impose.
namespace
{
struct EnvSetup
{
    EnvSetup()
    {
        setenv("CISA_SIM_UOPS", "900", 1);
        setenv("CISA_SIM_WARMUP", "200", 1);
        setenv("CISA_DSE_CACHE", "/tmp/cisa_dcsim_test_cache.bin",
               1);
        setenv("CISA_DCSIM_PAR_BATCH", "4", 1);
        std::remove("/tmp/cisa_dcsim_test_cache.bin");
        std::remove("/tmp/cisa_dcsim_test_cache.bin.corrupt");
    }
} env_setup;
} // namespace

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/parallel.hh"
#include "dcsim/dcsim.hh"
#include "workloads/profiles.hh"

namespace cisa
{
namespace
{

DcsimConfig
smallConfig()
{
    DcsimConfig cfg;
    cfg.cores = 24;
    cfg.jobs = 150;
    cfg.mix = "x86=1,thumb=1"; // two slabs keep the campaign cheap
    cfg.seed = 7;
    return cfg;
}

TEST(Dcsim, ByteIdenticalAtAnyThreadCount)
{
    DcsimConfig cfg = smallConfig();
    std::string json[3];
    int threads[3] = {1, 2, 4};
    for (int i = 0; i < 3; i++) {
        ScopedThreadLimit limit(threads[i]);
        PerfSource src;
        DcsimResult r = runDcsim(cfg, src);
        json[i] = dcsimJson(r);
    }
    EXPECT_EQ(json[0], json[1]);
    EXPECT_EQ(json[0], json[2]);
}

TEST(Dcsim, SerialAndParallelScoringAgree)
{
    DcsimConfig cfg = smallConfig();
    PerfSource src;
    // Batch threshold far above any batch size: all-serial scoring.
    setenv("CISA_DCSIM_PAR_BATCH", "1000000", 1);
    std::string serial = dcsimJson(runDcsim(cfg, src));
    // Threshold 2: essentially every batch scores on the pool.
    setenv("CISA_DCSIM_PAR_BATCH", "2", 1);
    std::string parallel = dcsimJson(runDcsim(cfg, src));
    setenv("CISA_DCSIM_PAR_BATCH", "4", 1);
    EXPECT_EQ(serial, parallel);
}

TEST(Dcsim, ConservationInvariants)
{
    DcsimConfig cfg = smallConfig();
    PerfSource src;
    DcsimResult r = runDcsim(cfg, src);
    EXPECT_EQ(r.jobsDone, cfg.jobs);
    EXPECT_EQ(r.cores, cfg.cores);

    // Each job is placed exactly once per phase of its benchmark,
    // so placements is bounded by the suite's phase-count range.
    uint64_t min_ph = ~uint64_t(0), max_ph = 0;
    for (const auto &b : specSuite()) {
        min_ph = std::min(min_ph, uint64_t(b.phases.size()));
        max_ph = std::max(max_ph, uint64_t(b.phases.size()));
    }
    EXPECT_GE(r.placements, r.jobsDone * min_ph);
    EXPECT_LE(r.placements, r.jobsDone * max_ph);
    EXPECT_LE(r.migrations, r.placements);
    EXPECT_LE(r.crossIsaMigrations, r.migrations);

    EXPECT_GT(r.makespanTicks, 0u);
    EXPECT_GT(r.throughputVs, 0.0);
    EXPECT_GT(r.busyEnergyJ, 0.0);
    EXPECT_GE(r.idleEnergyJ, 0.0);
    EXPECT_DOUBLE_EQ(r.energyJ, r.busyEnergyJ + r.idleEnergyJ);
    EXPECT_GT(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);
    EXPECT_LE(r.sojournP50, r.sojournP99);
    EXPECT_LE(r.sojournP99, r.sojournMax);
    EXPECT_NE(r.traceHash, 0u);
    EXPECT_GT(r.cellLookups, 0u);
    EXPECT_EQ(r.slabFetches, 2u); // x86 + thumb
}

TEST(Dcsim, OversubscriptionQueuesFifoAndDrains)
{
    DcsimConfig cfg = smallConfig();
    cfg.cores = 4;
    cfg.inflight = 16; // 4x oversubscribed
    PerfSource src;
    DcsimResult r = runDcsim(cfg, src);
    EXPECT_EQ(r.jobsDone, cfg.jobs);
    EXPECT_GT(r.waitedJobs, 0u);
    EXPECT_GT(r.peakWaiting, 0u);
    EXPECT_LE(r.peakWaiting, cfg.inflight);
    // Saturated grid: essentially all virtual time is busy.
    EXPECT_GT(r.utilization, 0.9);
}

TEST(Dcsim, OpenLoopArrivalsRespectSeedAndRate)
{
    DcsimConfig cfg = smallConfig();
    cfg.rate = 1e5; // jobs per virtual second
    PerfSource src;
    DcsimResult a = runDcsim(cfg, src);
    DcsimResult b = runDcsim(cfg, src);
    EXPECT_EQ(dcsimJson(a), dcsimJson(b));
    EXPECT_EQ(a.jobsDone, cfg.jobs);

    cfg.seed = 8;
    DcsimResult c = runDcsim(cfg, src);
    EXPECT_NE(a.traceHash, c.traceHash);
}

TEST(Dcsim, PoliciesDivergeAndStayDeterministic)
{
    DcsimConfig cfg = smallConfig();
    PerfSource src;
    cfg.policy = DcPolicy::Random;
    DcsimResult rnd = runDcsim(cfg, src);
    cfg.policy = DcPolicy::Affinity;
    DcsimResult aff = runDcsim(cfg, src);
    EXPECT_NE(rnd.traceHash, aff.traceHash);
    // Re-running each policy reproduces it exactly.
    cfg.policy = DcPolicy::Random;
    EXPECT_EQ(runDcsim(cfg, src).traceHash, rnd.traceHash);
}

TEST(Dcsim, TraceFileMatchesHashAndCount)
{
    DcsimConfig cfg = smallConfig();
    cfg.jobs = 40;
    cfg.tracePath = "/tmp/cisa_dcsim_test_trace.txt";
    std::remove(cfg.tracePath.c_str());
    PerfSource src;
    DcsimResult with_trace = runDcsim(cfg, src);

    uint64_t lines = 0;
    FILE *f = fopen(cfg.tracePath.c_str(), "r");
    ASSERT_NE(f, nullptr);
    int ch;
    while ((ch = fgetc(f)) != EOF) {
        if (ch == '\n')
            lines++;
    }
    fclose(f);
    std::remove(cfg.tracePath.c_str());
    EXPECT_EQ(lines, with_trace.placements);

    cfg.tracePath.clear();
    DcsimResult without = runDcsim(cfg, src);
    EXPECT_EQ(with_trace.traceHash, without.traceHash);
}

TEST(Dcsim, BaselineComparisonIsPopulated)
{
    DcsimConfig cfg = smallConfig();
    cfg.jobs = 60;
    cfg.inflight = 12;
    PerfSource src;
    DcsimComparison c = runWithBaseline(cfg, src);
    EXPECT_EQ(c.run.jobsDone, cfg.jobs);
    EXPECT_EQ(c.baseline.jobsDone, cfg.jobs);
    EXPECT_EQ(c.baseline.policy, DcPolicy::HomogBest);
    EXPECT_GT(c.throughputX, 0.0);
    EXPECT_GT(c.edpX, 0.0);
    // The baseline grid matches the heterogeneous grid's silicon.
    std::string j = dcsimComparisonJson(c);
    EXPECT_NE(j.find("\"vs\""), std::string::npos);
    EXPECT_NE(j.find("\"baseline\""), std::string::npos);
}

TEST(Cluster, ApportionmentIsExactAndBlocked)
{
    Cluster cl = Cluster::fromMix("x86=3,thumb=1", 17);
    EXPECT_EQ(cl.tiles(), 17u);
    ASSERT_EQ(cl.classes().size(), 2u);
    uint64_t sum = 0, at = 0;
    for (const auto &tc : cl.classes()) {
        EXPECT_GE(tc.count, 1u);
        EXPECT_EQ(tc.firstTile, at);
        at += tc.count;
        sum += tc.count;
    }
    EXPECT_EQ(sum, 17u);
    EXPECT_EQ(cl.classOf(0), 0u);
    EXPECT_EQ(cl.classOf(16), 1u);
    EXPECT_GT(cl.totalAreaMm2(), 0.0);

    Cluster base = cl.homogeneousBaseline();
    ASSERT_EQ(base.classes().size(), 1u);
    // Iso-area sizing: the x86 grid fills the same silicon.
    double tile = base.classes()[0].areaMm2;
    EXPECT_LE(double(base.tiles()) * tile, cl.totalAreaMm2() + tile);
}

TEST(DcPolicy, ParseRoundTrip)
{
    const char *names[] = {"random", "homog", "affinity",
                           "migration"};
    for (const char *n : names) {
        DcPolicy p;
        ASSERT_TRUE(parseDcPolicy(n, &p));
        EXPECT_STREQ(dcPolicyName(p), n);
    }
    DcPolicy p;
    EXPECT_FALSE(parseDcPolicy("bogus", &p));
    DcObjective o;
    ASSERT_TRUE(parseDcObjective("edp", &o));
    EXPECT_STREQ(dcObjectiveName(o), "edp");
    EXPECT_FALSE(parseDcObjective("speed", &o));
}

} // namespace
} // namespace cisa
