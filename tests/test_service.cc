/**
 * @file
 * Tests of the cisa-serve subsystem, bottom-up: frame codec
 * robustness (round-trips, truncation, corruption), the typed
 * request/response codecs, executor semantics with injected
 * synthetic handlers (coalescing, backpressure bound, per-waiter
 * deadlines, response cache, priority order, drain), the
 * consistent-hash shard ring (order-independence, balance, minimal
 * remap under churn, replica sets), and end-to-end loopbacks over
 * real sockets — UNIX and TCP: concurrent clients, byte-identical
 * responses, coalesce accounting, deadline frames, graceful-drain
 * BUSY rejection, connection limits, drip-fed partial reads,
 * checksum corruption in transit, client retry policies, and the
 * router fleet (relay byte-identity, stats roll-up, failover when a
 * worker dies mid-stream or entirely).
 */

#include <cstdlib>

// Must run before any Campaign::get() in this process.
namespace
{
struct EnvSetup
{
    EnvSetup()
    {
        setenv("CISA_SIM_UOPS", "600", 1);
        setenv("CISA_SIM_WARMUP", "100", 1);
        setenv("CISA_DSE_CACHE", "/tmp/cisa_service_cache.bin", 1);
        setenv("CISA_SEARCH_RESTARTS", "1", 1);
        setenv("CISA_THREADS", "4", 0);
    }
} env_setup;
} // namespace

#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <poll.h>

#include "common/hash.hh"
#include "explore/campaign.hh"
#include "service/address.hh"
#include "service/client.hh"
#include "service/executor.hh"
#include "service/frame.hh"
#include "service/router.hh"
#include "service/server.hh"
#include "service/shard.hh"
#include "workloads/profiles.hh"

namespace cisa
{
namespace
{

// ---------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------

std::vector<uint8_t>
somePayload()
{
    std::vector<uint8_t> p;
    for (int i = 0; i < 300; i++)
        p.push_back(uint8_t(i * 7));
    return p;
}

TEST(FrameCodec, RoundTrip)
{
    std::vector<uint8_t> payload = somePayload();
    std::vector<uint8_t> wire =
        encodeFrame(FrameKind::Response, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderBytes + payload.size());

    Frame f;
    std::string err;
    size_t pos = 0;
    ASSERT_EQ(decodeFrame(wire.data(), wire.size(), &pos, &f, &err),
              FrameDecode::Ok)
        << err;
    EXPECT_EQ(pos, wire.size());
    EXPECT_EQ(f.kind, FrameKind::Response);
    EXPECT_EQ(f.payload, payload);
}

TEST(FrameCodec, TwoFramesInOneBuffer)
{
    std::vector<uint8_t> wire =
        encodeFrame(FrameKind::Request, {1, 2, 3});
    std::vector<uint8_t> second =
        encodeFrame(FrameKind::Response, {4, 5});
    wire.insert(wire.end(), second.begin(), second.end());

    Frame f;
    std::string err;
    size_t pos = 0;
    ASSERT_EQ(decodeFrame(wire.data(), wire.size(), &pos, &f, &err),
              FrameDecode::Ok);
    EXPECT_EQ(f.payload, (std::vector<uint8_t>{1, 2, 3}));
    ASSERT_EQ(decodeFrame(wire.data(), wire.size(), &pos, &f, &err),
              FrameDecode::Ok);
    EXPECT_EQ(f.payload, (std::vector<uint8_t>{4, 5}));
    EXPECT_EQ(pos, wire.size());
}

TEST(FrameCodec, EveryTruncationNeedsMore)
{
    std::vector<uint8_t> wire =
        encodeFrame(FrameKind::Request, somePayload());
    for (size_t n = 0; n < wire.size(); n++) {
        Frame f;
        std::string err;
        size_t pos = 0;
        EXPECT_EQ(decodeFrame(wire.data(), n, &pos, &f, &err),
                  FrameDecode::NeedMore)
            << "prefix length " << n;
        EXPECT_EQ(pos, 0u);
    }
}

TEST(FrameCodec, CorruptHeaderRejected)
{
    std::vector<uint8_t> good =
        encodeFrame(FrameKind::Request, {9, 9, 9});
    Frame f;
    std::string err;

    std::vector<uint8_t> bad = good;
    bad[0] ^= 0xff; // magic
    size_t pos = 0;
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &pos, &f, &err),
              FrameDecode::Bad);

    bad = good;
    bad[4] = 0x77; // unknown kind
    pos = 0;
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &pos, &f, &err),
              FrameDecode::Bad);

    bad = good;
    bad[6] = 1; // reserved flags must be zero
    pos = 0;
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &pos, &f, &err),
              FrameDecode::Bad);

    bad = good;
    bad[11] = 0xff; // length beyond kMaxFramePayload
    pos = 0;
    EXPECT_EQ(decodeFrame(bad.data(), bad.size(), &pos, &f, &err),
              FrameDecode::Bad);
}

TEST(FrameCodec, EveryBitFlipDetected)
{
    // Flipping any single bit of a frame must never yield a
    // successfully-decoded frame with different bytes: either the
    // header check or the payload checksum catches it (a larger
    // length field may report NeedMore — also not a silent
    // corruption).
    std::vector<uint8_t> good =
        encodeFrame(FrameKind::Request, somePayload());
    for (size_t byte = 0; byte < good.size(); byte++) {
        for (int bit = 0; bit < 8; bit++) {
            std::vector<uint8_t> bad = good;
            bad[byte] ^= uint8_t(1u << bit);
            Frame f;
            std::string err;
            size_t pos = 0;
            FrameDecode rc =
                decodeFrame(bad.data(), bad.size(), &pos, &f, &err);
            ASSERT_NE(rc, FrameDecode::Ok)
                << "byte " << byte << " bit " << bit;
        }
    }
}

// ---------------------------------------------------------------
// Request / response codecs
// ---------------------------------------------------------------

Request
roundTripped(const Request &req, uint32_t deadline_in,
             uint32_t *deadline_out)
{
    std::vector<uint8_t> wire =
        encodeRequestEnvelope(req, deadline_in);
    Request out;
    std::string err;
    EXPECT_TRUE(
        decodeRequestEnvelope(wire, &out, deadline_out, &err))
        << err;
    return out;
}

TEST(RequestCodec, EveryTypeRoundTrips)
{
    std::vector<Request> reqs = {
        Request::ping(),
        Request::evalPoint(DesignPoint::composite(13, 42), 7),
        Request::evalPoint(
            DesignPoint::vendorPoint(VendorIsa::ThumbLike, 3), 0),
        Request::slabPerf(27),
        Request::tableOf(4),
        Request::searchDesign(Family::CompositeFull,
                              Objective::MpEdp,
                              Budget{30.0, 80.0, true}, 99),
        Request::stats(),
    };
    for (const Request &req : reqs) {
        uint32_t deadline = 0;
        Request out = roundTripped(req, 1234, &deadline);
        EXPECT_EQ(deadline, 1234u);
        EXPECT_EQ(out.type, req.type);
        EXPECT_EQ(out.fingerprint(), req.fingerprint());
    }
    // Fingerprints of distinct requests must be distinct.
    for (size_t i = 0; i < reqs.size(); i++)
        for (size_t j = i + 1; j < reqs.size(); j++)
            EXPECT_NE(reqs[i].fingerprint(), reqs[j].fingerprint());
}

TEST(RequestCodec, DeadlineExcludedFromFingerprint)
{
    Request req = Request::slabPerf(3);
    std::vector<uint8_t> a = encodeRequestEnvelope(req, 10);
    std::vector<uint8_t> b = encodeRequestEnvelope(req, 99999);
    EXPECT_NE(a, b); // envelopes differ...
    Request ra, rb;
    uint32_t da = 0, db = 0;
    std::string err;
    ASSERT_TRUE(decodeRequestEnvelope(a, &ra, &da, &err));
    ASSERT_TRUE(decodeRequestEnvelope(b, &rb, &db, &err));
    // ...but the requests coalesce: same canonical key.
    EXPECT_EQ(ra.fingerprint(), rb.fingerprint());
}

TEST(RequestCodec, MalformedRejected)
{
    auto rejects = [](std::vector<uint8_t> wire) {
        Request out;
        uint32_t deadline = 0;
        std::string err;
        return !decodeRequestEnvelope(wire, &out, &deadline, &err);
    };

    EXPECT_TRUE(rejects({})); // empty
    EXPECT_TRUE(rejects({1, 2, 3})); // short envelope

    { // unknown request type
        ByteWriter w;
        w.u32(0);
        w.u8(200);
        EXPECT_TRUE(rejects(w.take()));
    }
    { // trailing junk after a valid request
        std::vector<uint8_t> wire =
            encodeRequestEnvelope(Request::ping(), 0);
        wire.push_back(0);
        EXPECT_TRUE(rejects(wire));
    }
    // Out-of-range fields, each corrupted from a valid request.
    {
        Request req = Request::slabPerf(0);
        req.slab.slab = Campaign::kSlabs; // one past the end
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
        req.slab.slab = -1;
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
    }
    {
        Request req =
            Request::evalPoint(DesignPoint::composite(0, 0), 0);
        req.eval.phase = phaseCount();
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
        req.eval.phase = 0;
        req.eval.uarchId = DesignPoint::kUarchCount;
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
        req.eval.uarchId = 0;
        req.eval.isaId = FeatureSet::count();
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
        req.eval.isaId = 0;
        req.eval.vendor = 200;
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
    }
    {
        Request req = Request::searchDesign(
            Family::Homogeneous, Objective::MpThroughput, Budget{});
        req.search.family = 99;
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
        req.search.family = 0;
        req.search.objective = 99;
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
        req.search.objective = 0;
        req.search.powerW = -1.0;
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
        req.search.powerW = std::nan("");
        EXPECT_TRUE(rejects(encodeRequestEnvelope(req, 0)));
    }
}

TEST(ResponseCodec, RoundTrips)
{
    for (Status s : {Status::Ok, Status::Busy, Status::Deadline,
                     Status::CancelledByPeer, Status::BadRequest,
                     Status::Error}) {
        Response in;
        in.status = s;
        in.message = s == Status::Ok ? "" : "why";
        in.body = {1, 2, 3, 4};
        ByteWriter w;
        in.encode(w);
        std::vector<uint8_t> wire = w.take();
        ByteReader r(wire);
        Response out;
        ASSERT_TRUE(Response::decode(r, &out));
        EXPECT_TRUE(r.atEnd());
        EXPECT_EQ(out.status, in.status);
        EXPECT_EQ(out.message, in.message);
        EXPECT_EQ(out.body, in.body);
    }
}

TEST(ResponseCodec, StaleFlagRidesStatusBitSeven)
{
    Response in;
    in.status = Status::Ok;
    in.body = {9, 8, 7};
    ByteWriter wFresh;
    in.encode(wFresh);
    in.stale = true;
    ByteWriter wStale;
    in.encode(wStale);
    std::vector<uint8_t> fresh = wFresh.take();
    std::vector<uint8_t> stale = wStale.take();
    // Identical bytes except the flag bit: the fleet's byte-identity
    // guarantee covers stale serves (same body, different mode).
    ASSERT_EQ(fresh.size(), stale.size());
    EXPECT_EQ(stale[0], fresh[0] | 0x80);
    EXPECT_TRUE(std::equal(fresh.begin() + 1, fresh.end(),
                           stale.begin() + 1));

    ByteReader r(stale);
    Response out;
    ASSERT_TRUE(Response::decode(r, &out));
    EXPECT_EQ(out.status, Status::Ok);
    EXPECT_TRUE(out.stale);
    EXPECT_EQ(out.body, in.body);

    // A flag bit over a garbage status is still rejected.
    std::vector<uint8_t> bad = stale;
    bad[0] = 0x80 | 0x7f;
    ByteReader rb(bad);
    EXPECT_FALSE(Response::decode(rb, &out));
}

TEST(ResponseCodec, TypedBodiesRoundTrip)
{
    PhasePerf p;
    p.timePerRun = 1.5f;
    p.energyPerRun = 2.5f;
    p.timePerRunMp = 3.5f;
    p.energyPerRunMp = 4.5f;
    {
        ByteWriter w;
        encodePhasePerf(w, p);
        std::vector<uint8_t> wire = w.take();
        ByteReader r(wire);
        PhasePerf out;
        ASSERT_TRUE(decodePhasePerf(r, &out));
        EXPECT_EQ(out.timePerRun, p.timePerRun);
        EXPECT_EQ(out.energyPerRunMp, p.energyPerRunMp);
    }
    {
        ByteWriter w;
        encodeSlabPerf(w, {p, p, p});
        std::vector<uint8_t> wire = w.take();
        ByteReader r(wire);
        std::vector<PhasePerf> out;
        ASSERT_TRUE(decodeSlabPerf(r, &out));
        ASSERT_EQ(out.size(), 3u);
        EXPECT_EQ(out[2].timePerRunMp, p.timePerRunMp);
    }
    { // truncated typed body is rejected, not misread
        ByteWriter w;
        encodeSlabPerf(w, {p, p, p});
        std::vector<uint8_t> wire = w.take();
        wire.resize(wire.size() - 3);
        ByteReader r(wire);
        std::vector<PhasePerf> out;
        EXPECT_FALSE(decodeSlabPerf(r, &out));
    }
}

TEST(StatsCodec, RoundTrips)
{
    StatsSnap in;
    in.ep[size_t(ReqType::Slab)].requests = 17;
    in.ep[size_t(ReqType::Slab)].coalesced = 5;
    in.ep[size_t(ReqType::Search)].deadline = 2;
    in.queueDepth = 3;
    in.queuePeak = 9;
    in.inFlight = 2;
    in.draining = 1;
    in.store.loaded = 4;
    in.store.appendedBytes = 12345;
    in.engine.cellsBatched = 17640;
    in.engine.cellsPerCell = 8;
    in.engine.walksDone = 600;
    in.engine.walksSaved = 17048;
    in.ep[size_t(ReqType::Slab)].bytesIn = 4096;
    in.ep[size_t(ReqType::Slab)].bytesOut = 1u << 20;
    in.liveConns = 3;
    in.connsAccepted = 11;
    in.connsRejected = 2;
    in.reroutes = 7;
    in.workersUp = 3;
    in.workersKnown = 4;
    ByteWriter w;
    in.encode(w);
    std::vector<uint8_t> wire = w.take();
    ByteReader r(wire);
    StatsSnap out;
    ASSERT_TRUE(StatsSnap::decode(r, &out));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(out.ep[size_t(ReqType::Slab)].requests, 17u);
    EXPECT_EQ(out.ep[size_t(ReqType::Slab)].coalesced, 5u);
    EXPECT_EQ(out.ep[size_t(ReqType::Search)].deadline, 2u);
    EXPECT_EQ(out.queuePeak, 9u);
    EXPECT_EQ(out.draining, 1);
    EXPECT_EQ(out.totalRequests(), 17u);
    EXPECT_EQ(out.totalCoalesced(), 5u);
    EXPECT_EQ(out.store.loaded, 4u);
    EXPECT_EQ(out.store.appendedBytes, 12345u);
    EXPECT_EQ(out.engine.cellsBatched, 17640u);
    EXPECT_EQ(out.engine.cellsPerCell, 8u);
    EXPECT_EQ(out.engine.walksDone, 600u);
    EXPECT_EQ(out.engine.walksSaved, 17048u);
    EXPECT_EQ(out.ep[size_t(ReqType::Slab)].bytesIn, 4096u);
    EXPECT_EQ(out.ep[size_t(ReqType::Slab)].bytesOut,
              uint64_t(1u << 20));
    EXPECT_EQ(out.totalBytesIn(), 4096u);
    EXPECT_EQ(out.totalBytesOut(), uint64_t(1u << 20));
    EXPECT_EQ(out.liveConns, 3u);
    EXPECT_EQ(out.connsAccepted, 11u);
    EXPECT_EQ(out.connsRejected, 2u);
    EXPECT_EQ(out.reroutes, 7u);
    EXPECT_EQ(out.workersUp, 3u);
    EXPECT_EQ(out.workersKnown, 4u);
}

TEST(StatsCodec, MergeRollsUpWorkerSnapshots)
{
    StatsSnap a, b;
    auto &sa = a.ep[size_t(ReqType::Slab)];
    sa.requests = 10;
    sa.ok = 9;
    sa.bytesOut = 1000;
    sa.latCount = 9;
    sa.p99Us = 500;
    auto &sb = b.ep[size_t(ReqType::Slab)];
    sb.requests = 4;
    sb.ok = 4;
    sb.bytesOut = 400;
    sb.latCount = 4;
    sb.p99Us = 900;
    a.liveConns = 2;
    b.liveConns = 1;
    b.draining = 1;
    // Both workers share the one slab-store file: fileBytes must
    // not double-count, while per-worker append work adds up.
    a.store.fileBytes = 5000;
    b.store.fileBytes = 5000;
    a.store.appendedBytes = 100;
    b.store.appendedBytes = 200;

    StatsSnap fleet;
    fleet.merge(a);
    fleet.merge(b);
    const auto &slab = fleet.ep[size_t(ReqType::Slab)];
    EXPECT_EQ(slab.requests, 14u);
    EXPECT_EQ(slab.ok, 13u);
    EXPECT_EQ(slab.bytesOut, 1400u);
    EXPECT_EQ(slab.latCount, 13u);
    EXPECT_EQ(slab.p99Us, 900u); // worst worker, not a sum
    EXPECT_EQ(fleet.liveConns, 3u);
    EXPECT_EQ(fleet.draining, 1);
    EXPECT_EQ(fleet.store.fileBytes, 5000u);
    EXPECT_EQ(fleet.store.appendedBytes, 300u);
}

// ---------------------------------------------------------------
// Executor semantics (synthetic handlers)
// ---------------------------------------------------------------

/** A handler the test can hold open and release. */
struct GatedHandler
{
    std::mutex mu;
    std::condition_variable cv;
    bool open = false;
    std::atomic<int> invocations{0};

    void
    release()
    {
        std::lock_guard<std::mutex> lk(mu);
        open = true;
        cv.notify_all();
    }

    Response
    operator()(const Request &req, CancelToken &token)
    {
        invocations++;
        std::unique_lock<std::mutex> lk(mu);
        while (!cv.wait_for(lk, std::chrono::milliseconds(5),
                            [&] { return open; })) {
            checkCancel(&token); // throws Cancelled when expired
        }
        Response resp;
        resp.body = {uint8_t(req.type), 42};
        return resp;
    }
};

TEST(Executor, CoalescesConcurrentTwins)
{
    GatedHandler gate;
    Executor::Options opts;
    opts.queueBound = 16;
    opts.workers = 2;
    opts.handler = std::ref(gate);
    Executor exec(opts);

    constexpr int kClients = 8;
    std::vector<Response> got(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; i++) {
        clients.emplace_back([&, i] {
            got[size_t(i)] = exec.call(Request::slabPerf(5));
        });
    }
    // Wait until the one shared job is running, then release it.
    while (gate.invocations.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    gate.release();
    for (std::thread &t : clients)
        t.join();

    // One computation, kClients identical responses. (Late clients
    // may legitimately hit the cache if they submitted after the
    // job finished; coalesced + cacheHits covers all but the one
    // that ran.)
    EXPECT_EQ(gate.invocations.load(), 1);
    for (const Response &r : got) {
        EXPECT_EQ(r.status, Status::Ok);
        EXPECT_EQ(r.body, got[0].body);
    }
    StatsSnap s = exec.snapshot();
    const EndpointSnap &slab = s.ep[size_t(ReqType::Slab)];
    EXPECT_EQ(slab.requests, uint64_t(kClients));
    EXPECT_EQ(slab.coalesced + slab.cacheHits,
              uint64_t(kClients - 1));
    EXPECT_GE(slab.coalesced, 1u);
}

TEST(Executor, QueueBoundGivesBusyAndNeverGrows)
{
    GatedHandler gate;
    Executor::Options opts;
    opts.queueBound = 3;
    opts.workers = 1;
    opts.cacheEntries = 0;
    opts.handler = std::ref(gate);
    Executor exec(opts);

    // One request occupies the worker; the queue then fills with
    // distinct requests up to the bound.
    std::vector<std::thread> waiters;
    auto spawn = [&](Request req) {
        Executor::JobPtr job;
        Response cached;
        ASSERT_EQ(exec.submit(req, 0, &job, &cached),
                  Executor::Admit::Accepted);
        waiters.emplace_back([&exec, job] { exec.wait(job, 0); });
    };
    spawn(Request::ping());
    while (gate.invocations.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    for (int i = 0; i < 3; i++)
        spawn(Request::slabPerf(i));
    EXPECT_EQ(exec.queueDepth(), 3u);

    // A saturated queue rejects immediately and buffers nothing —
    // no matter how many times we try.
    for (int i = 0; i < 100; i++) {
        Executor::JobPtr job;
        Response cached;
        EXPECT_EQ(exec.submit(Request::slabPerf(10 + i), 0, &job,
                              &cached),
                  Executor::Admit::Busy);
        EXPECT_LE(exec.queueDepth(), 3u);
    }
    StatsSnap s = exec.snapshot();
    EXPECT_EQ(s.ep[size_t(ReqType::Slab)].busy, 100u);
    EXPECT_EQ(s.queuePeak, 3u);

    gate.release();
    for (std::thread &t : waiters)
        t.join();
}

TEST(Executor, WaiterDeadlineReturnsDeadline)
{
    GatedHandler gate; // never released: the job outlives the waiter
    Executor::Options opts;
    opts.queueBound = 4;
    opts.workers = 1;
    opts.handler = std::ref(gate);
    Executor exec(opts);

    auto t0 = std::chrono::steady_clock::now();
    Response r = exec.call(Request::slabPerf(1), 40);
    auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    EXPECT_EQ(r.status, Status::Deadline);
    EXPECT_GE(ms, 35);
    EXPECT_LT(ms, 5000) << "deadline must not hang";
    EXPECT_EQ(exec.snapshot().ep[size_t(ReqType::Slab)].deadline,
              1u);
    // The lone waiter left, so the token was cancelled and the
    // gated handler unblocked via checkCancel; the executor must
    // become idle again (drain would hang otherwise).
    exec.drain();
}

TEST(Executor, CachesCompletedResponses)
{
    std::atomic<int> runs{0};
    Executor::Options opts;
    opts.queueBound = 4;
    opts.workers = 1;
    opts.cacheEntries = 8;
    opts.handler = [&](const Request &, CancelToken &) {
        runs++;
        Response r;
        r.body = {7};
        return r;
    };
    Executor exec(opts);

    EXPECT_EQ(exec.call(Request::slabPerf(2)).status, Status::Ok);
    EXPECT_EQ(exec.call(Request::slabPerf(2)).status, Status::Ok);
    EXPECT_EQ(runs.load(), 1) << "second call must be a cache hit";
    EXPECT_EQ(exec.snapshot().ep[size_t(ReqType::Slab)].cacheHits,
              1u);

    // Ping is not cacheable: each call runs.
    EXPECT_EQ(exec.call(Request::ping()).status, Status::Ok);
    EXPECT_EQ(exec.call(Request::ping()).status, Status::Ok);
    EXPECT_EQ(runs.load(), 3);
}

TEST(Executor, StaleServesCachedAnswerWhileDraining)
{
    std::atomic<int> runs{0};
    Executor::Options opts;
    opts.queueBound = 4;
    opts.workers = 1;
    opts.cacheEntries = 8;
    opts.staleServe = 1;
    opts.handler = [&](const Request &, CancelToken &) {
        runs++;
        Response r;
        r.body = {7};
        return r;
    };
    Executor exec(opts);

    Response fresh = exec.call(Request::slabPerf(2));
    EXPECT_EQ(fresh.status, Status::Ok);
    EXPECT_FALSE(fresh.stale);
    exec.drain();

    // Degraded mode: the cached answer comes back flagged stale,
    // with the exact same body; uncached requests still see BUSY.
    Response stale = exec.call(Request::slabPerf(2));
    EXPECT_EQ(stale.status, Status::Ok);
    EXPECT_TRUE(stale.stale);
    EXPECT_EQ(stale.body, fresh.body);
    EXPECT_EQ(runs.load(), 1);
    EXPECT_EQ(exec.call(Request::slabPerf(3)).status, Status::Busy);

    StatsSnap s = exec.snapshot();
    EXPECT_EQ(s.ep[size_t(ReqType::Slab)].stale, 1u);
    EXPECT_EQ(s.ep[size_t(ReqType::Slab)].cacheHits, 1u);
}

TEST(Executor, StaleServeDisabledRestoresStrictDrain)
{
    Executor::Options opts;
    opts.queueBound = 4;
    opts.workers = 1;
    opts.cacheEntries = 8;
    opts.staleServe = 0;
    opts.handler = [&](const Request &, CancelToken &) {
        Response r;
        r.body = {7};
        return r;
    };
    Executor exec(opts);

    EXPECT_EQ(exec.call(Request::slabPerf(2)).status, Status::Ok);
    exec.drain();
    // Strict mode: draining answers BUSY even on a cache hit.
    EXPECT_EQ(exec.call(Request::slabPerf(2)).status, Status::Busy);
    EXPECT_EQ(exec.snapshot().ep[size_t(ReqType::Slab)].stale, 0u);
}

TEST(Executor, StaleServesCachedAnswerWhenQueueIsFull)
{
    GatedHandler gate;
    Executor::Options opts;
    opts.queueBound = 1;
    opts.workers = 1;
    opts.cacheEntries = 8;
    opts.staleServe = 1;
    opts.handler = std::ref(gate);
    Executor exec(opts);

    // Warm the cache while the executor is healthy.
    gate.release();
    Response fresh = exec.call(Request::slabPerf(2));
    EXPECT_EQ(fresh.status, Status::Ok);
    EXPECT_FALSE(fresh.stale);

    // Saturate: one request on the worker, one in the queue.
    {
        std::lock_guard<std::mutex> lk(gate.mu);
        gate.open = false;
    }
    std::vector<std::thread> waiters;
    waiters.emplace_back(
        [&] { exec.call(Request::slabPerf(3)); });
    while (gate.invocations.load() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    waiters.emplace_back(
        [&] { exec.call(Request::slabPerf(4)); });
    while (exec.queueDepth() < 1)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Queue at bound: the cached slab is served stale, the uncached
    // one is refused.
    Response stale = exec.call(Request::slabPerf(2));
    EXPECT_EQ(stale.status, Status::Ok);
    EXPECT_TRUE(stale.stale);
    EXPECT_EQ(stale.body, fresh.body);
    EXPECT_EQ(exec.call(Request::slabPerf(5)).status, Status::Busy);

    gate.release();
    for (std::thread &t : waiters)
        t.join();

    // Healthy again: the same hit is fresh once more.
    Response again = exec.call(Request::slabPerf(2));
    EXPECT_EQ(again.status, Status::Ok);
    EXPECT_FALSE(again.stale);
}

TEST(Executor, CacheEvictsBeyondCapacity)
{
    std::atomic<int> runs{0};
    Executor::Options opts;
    opts.queueBound = 8;
    opts.workers = 1;
    opts.cacheEntries = 2;
    opts.handler = [&](const Request &, CancelToken &) {
        runs++;
        return Response{};
    };
    Executor exec(opts);

    for (int slab = 0; slab < 4; slab++)
        exec.call(Request::slabPerf(slab));
    EXPECT_EQ(runs.load(), 4);
    // Slabs 2 and 3 are cached; slab 0 was evicted and recomputes.
    exec.call(Request::slabPerf(3));
    EXPECT_EQ(runs.load(), 4);
    exec.call(Request::slabPerf(0));
    EXPECT_EQ(runs.load(), 5);
}

TEST(Executor, PriorityClassOrdersQueue)
{
    GatedHandler gate;
    std::vector<ReqType> order;
    std::mutex orderMu;
    Executor::Options opts;
    opts.queueBound = 8;
    opts.workers = 1;
    opts.cacheEntries = 0;
    opts.handler = [&](const Request &req,
                       CancelToken &token) -> Response {
        if (req.type == ReqType::Ping)
            return gate(req, token); // holds the worker
        std::lock_guard<std::mutex> lk(orderMu);
        order.push_back(req.type);
        return Response{};
    };
    Executor exec(opts);

    std::thread blocker(
        [&] { exec.call(Request::ping()); });
    while (gate.invocations.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // Enqueue in "wrong" order: search (class 2), slab (class 1),
    // eval (class 0). The single worker must drain cheapest-first.
    std::vector<std::thread> clients;
    Request search = Request::searchDesign(
        Family::Homogeneous, Objective::MpThroughput, Budget{});
    Request slab = Request::slabPerf(1);
    Request eval =
        Request::evalPoint(DesignPoint::composite(0, 0), 0);
    for (const Request *r : {&search, &slab, &eval}) {
        Executor::JobPtr job;
        Response cached;
        ASSERT_EQ(exec.submit(*r, 0, &job, &cached),
                  Executor::Admit::Accepted);
        clients.emplace_back([&exec, job] { exec.wait(job, 0); });
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    gate.release();
    for (std::thread &t : clients)
        t.join();
    blocker.join();

    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], ReqType::Eval);
    EXPECT_EQ(order[1], ReqType::Slab);
    EXPECT_EQ(order[2], ReqType::Search);
}

TEST(Executor, DrainFinishesWorkThenRejects)
{
    GatedHandler gate;
    Executor::Options opts;
    opts.queueBound = 8;
    opts.workers = 2;
    opts.handler = std::ref(gate);
    Executor exec(opts);

    std::vector<std::thread> clients;
    std::vector<Response> got(3);
    for (int i = 0; i < 3; i++) {
        clients.emplace_back([&, i] {
            got[size_t(i)] = exec.call(Request::slabPerf(i));
        });
    }
    while (gate.invocations.load() < 2)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    std::thread drainer([&] { exec.drain(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    // Draining: new work is rejected...
    EXPECT_EQ(exec.call(Request::slabPerf(9)).status, Status::Busy);
    // ...but queued and running work still completes.
    gate.release();
    drainer.join();
    for (std::thread &t : clients)
        t.join();
    for (const Response &r : got)
        EXPECT_EQ(r.status, Status::Ok);
    EXPECT_EQ(exec.call(Request::ping()).status, Status::Busy);
}

TEST(Executor, StatsServedInlineWhenSaturated)
{
    GatedHandler gate;
    Executor::Options opts;
    opts.queueBound = 1;
    opts.workers = 1;
    opts.handler = std::ref(gate);
    Executor exec(opts);

    std::thread blocker([&] { exec.call(Request::ping()); });
    while (gate.invocations.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Executor::JobPtr job;
    Response cached;
    ASSERT_EQ(exec.submit(Request::slabPerf(0), 0, &job, &cached),
              Executor::Admit::Accepted);
    std::thread waiter([&exec, job] { exec.wait(job, 0); });

    // Queue is full — but stats must still answer immediately.
    Response r = exec.call(Request::stats());
    EXPECT_EQ(r.status, Status::Ok);
    ByteReader br(r.body);
    StatsSnap snap;
    ASSERT_TRUE(StatsSnap::decode(br, &snap));
    EXPECT_EQ(snap.queueDepth, 1u);
    EXPECT_EQ(snap.inFlight, 1u);

    gate.release();
    waiter.join();
    blocker.join();
}

// ---------------------------------------------------------------
// End-to-end loopback over a real UNIX socket
// ---------------------------------------------------------------

std::string
testSocketPath(const char *tag)
{
    return std::string("/tmp/cisa_serve_test_") + tag + "_" +
           std::to_string(getpid()) + ".sock";
}

TEST(ServerE2E, ConcurrentClientsByteIdenticalAndCoalesced)
{
    Server::Options opts;
    opts.address = testSocketPath("e2e");
    opts.exec.queueBound = 32;
    opts.exec.workers = 2;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // N clients all ask for the same cold slab at the same moment.
    constexpr int kClients = 6;
    constexpr int kSlab = 2;
    std::vector<Response> got(kClients);
    // vector<char>, not vector<bool>: the clients write their slots
    // concurrently, and vector<bool> packs neighbours into one word.
    std::vector<char> okTransport(kClients, 0);
    std::atomic<int> ready{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; i++) {
        threads.emplace_back([&, i] {
            Client c;
            std::string cerr;
            if (!c.connect(opts.address, &cerr))
                return;
            ready++;
            while (ready.load() < kClients) // start barrier
                std::this_thread::yield();
            okTransport[size_t(i)] =
                c.call(Request::slabPerf(kSlab), &got[size_t(i)]);
        });
    }
    for (std::thread &t : threads)
        t.join();

    for (int i = 0; i < kClients; i++) {
        ASSERT_TRUE(okTransport[size_t(i)]) << "client " << i;
        ASSERT_EQ(got[size_t(i)].status, Status::Ok);
        // Byte-identical responses across every client.
        EXPECT_EQ(got[size_t(i)].body, got[0].body);
    }

    // The response equals a direct library call, byte for byte.
    ByteWriter w;
    encodeSlabPerf(w, Campaign::get().slabPerf(kSlab));
    EXPECT_EQ(got[0].body, w.bytes());

    // All but the first request were deduplicated, and the dedup
    // is visible in the metrics.
    StatsSnap s = server.executor().snapshot();
    const EndpointSnap &slab = s.ep[size_t(ReqType::Slab)];
    EXPECT_EQ(slab.requests, uint64_t(kClients));
    EXPECT_EQ(slab.coalesced + slab.cacheHits,
              uint64_t(kClients - 1));

    server.stop();
    // The socket file is gone after a clean stop.
    EXPECT_NE(::access(opts.address.c_str(), F_OK), 0);
}

TEST(ServerE2E, SlowRequestShortDeadlineGetsDeadlineFrame)
{
    Server::Options opts;
    opts.address = testSocketPath("ddl");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    Client c;
    ASSERT_TRUE(c.connect(opts.address, &err)) << err;
    // A full composite search is far slower than 10 ms even at the
    // test's tiny simulation budget; the reply must be a DEADLINE
    // frame, not a hang.
    SearchResult res;
    auto t0 = std::chrono::steady_clock::now();
    Status s = c.search(Family::CompositeFull, Objective::MpEdp,
                        Budget{25.0, 60.0, false}, 1, &res, 10);
    auto sec = std::chrono::duration_cast<std::chrono::seconds>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    EXPECT_EQ(s, Status::Deadline);
    EXPECT_LT(sec, 60) << "deadline response must be prompt";

    server.stop();
}

TEST(ServerE2E, CorruptFramesRejectedCleanly)
{
    Server::Options opts;
    opts.address = testSocketPath("bad");
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // A valid frame whose payload is not a request envelope gets a
    // BADREQ response and the connection stays usable.
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                  opts.address.c_str());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    ASSERT_TRUE(
        writeFrame(fd, FrameKind::Request, {0xde, 0xad, 0xbe}));
    Frame f;
    ASSERT_EQ(readFrame(fd, &f, &err), FrameRead::Ok) << err;
    {
        ByteReader r(f.payload);
        Response resp;
        ASSERT_TRUE(Response::decode(r, &resp));
        EXPECT_EQ(resp.status, Status::BadRequest);
    }

    // Same connection still answers a well-formed request.
    ASSERT_TRUE(writeFrame(
        fd, FrameKind::Request,
        encodeRequestEnvelope(Request::ping(), 0)));
    ASSERT_EQ(readFrame(fd, &f, &err), FrameRead::Ok) << err;
    {
        ByteReader r(f.payload);
        Response resp;
        ASSERT_TRUE(Response::decode(r, &resp));
        EXPECT_EQ(resp.status, Status::Ok);
    }

    // Raw garbage (no valid frame header) gets one final response
    // and then the connection is terminated — never a crash or a
    // hang. (The close may surface as EOF or as ECONNRESET when the
    // server discards unread junk; both are a clean termination.)
    const uint8_t junk[32] = {0x13, 0x37};
    ASSERT_EQ(::write(fd, junk, sizeof(junk)), ssize_t(sizeof(junk)));
    FrameRead rc = readFrame(fd, &f, &err);
    if (rc == FrameRead::Ok) {
        ByteReader r(f.payload);
        Response resp;
        ASSERT_TRUE(Response::decode(r, &resp));
        EXPECT_EQ(resp.status, Status::BadRequest);
        rc = readFrame(fd, &f, &err);
    }
    EXPECT_NE(rc, FrameRead::Ok);
    ::close(fd);

    server.stop();
}

TEST(ServerE2E, GracefulDrainRejectsNewWithBusy)
{
    GatedHandler gate;
    Server::Options opts;
    opts.address = testSocketPath("drain");
    opts.exec.queueBound = 8;
    opts.exec.workers = 1;
    opts.exec.handler = std::ref(gate);
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Both connections must exist before the stop: once the
    // acceptor has shut down, no new connections are served.
    Client probe;
    ASSERT_TRUE(probe.connect(opts.address, &err)) << err;

    // One in-flight request holds the (synthetic) handler open.
    Response slow;
    std::thread inflight([&] {
        Client c;
        if (c.connect(opts.address))
            c.call(Request::slabPerf(0), &slow);
    });
    while (gate.invocations.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // SIGTERM path: requestStop() from (nominally) a signal
    // handler, stop() drains on a worker thread.
    server.requestStop();
    std::thread stopper([&] { server.stop(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    // During the drain, a new request on a live connection is
    // rejected with BUSY.
    {
        Response r;
        ASSERT_TRUE(probe.call(Request::slabPerf(1), &r))
            << probe.lastError();
        EXPECT_EQ(r.status, Status::Busy);
    }

    // The in-flight request still completes and its response is
    // delivered before the connection closes.
    gate.release();
    stopper.join();
    inflight.join();
    EXPECT_EQ(slow.status, Status::Ok);
}

TEST(ServerE2E, MaxConnsRejectsExtraConnectionsWithBusy)
{
    Server::Options opts;
    opts.address = testSocketPath("maxc");
    opts.maxConns = 1;
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    Client first;
    ASSERT_TRUE(first.connect(opts.address, &err)) << err;
    // A round-trip guarantees the connection has been accepted and
    // counted before the second one arrives.
    EXPECT_EQ(first.ping(), Status::Ok);

    // The second connection is accepted at the socket level, then
    // refused with one unsolicited BUSY frame and closed — a reader
    // sees a clean, typed rejection, not a hang or a reset.
    int fd = connectTo(opts.address, &err);
    ASSERT_GE(fd, 0) << err;
    Frame f;
    ASSERT_EQ(readFrame(fd, &f, &err), FrameRead::Ok) << err;
    {
        ByteReader r(f.payload);
        Response resp;
        ASSERT_TRUE(Response::decode(r, &resp));
        EXPECT_EQ(resp.status, Status::Busy);
    }
    EXPECT_NE(readFrame(fd, &f, &err), FrameRead::Ok); // closed
    ::close(fd);

    StatsSnap snap;
    ASSERT_EQ(first.stats(&snap), Status::Ok);
    EXPECT_EQ(snap.liveConns, 1u);
    EXPECT_GE(snap.connsAccepted, 1u);
    EXPECT_GE(snap.connsRejected, 1u);

    // Closing the counted connection frees the slot (the close is
    // noticed asynchronously; poll until a fresh client gets in).
    first.close();
    Status st = Status::Busy;
    for (int i = 0; i < 200 && st != Status::Ok; i++) {
        Client third;
        if (third.connect(opts.address))
            st = third.ping();
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(st, Status::Ok);

    server.stop();
}

// ---------------------------------------------------------------
// TCP transport
// ---------------------------------------------------------------

TEST(FrameCodec, WireReadSurvivesByteDribble)
{
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    const std::vector<uint8_t> wire =
        encodeFrame(FrameKind::Response, somePayload());

    // A writer that delivers the frame in 3-byte slices, twice —
    // the worst TCP segmentation a reader can see.
    std::thread writer([&] {
        for (int rep = 0; rep < 2; rep++) {
            for (size_t i = 0; i < wire.size(); i += 3) {
                size_t n = std::min<size_t>(3, wire.size() - i);
                if (::write(sv[0], wire.data() + i, n) != ssize_t(n))
                    return;
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
            }
        }
        ::shutdown(sv[0], SHUT_WR);
    });

    std::vector<uint8_t> got;
    FrameKind kind;
    std::string err;
    // Verified read: full wire image preserved for relaying.
    ASSERT_EQ(readFrameWire(sv[1], &got, &kind, &err, true),
              FrameRead::Ok)
        << err;
    EXPECT_EQ(kind, FrameKind::Response);
    EXPECT_EQ(got, wire);
    // Unverified (router-style) read: must consume exactly one
    // frame and stay framed.
    ASSERT_EQ(readFrameWire(sv[1], &got, &kind, &err, false),
              FrameRead::Ok)
        << err;
    EXPECT_EQ(got, wire);
    // Clean end of stream after the second frame.
    EXPECT_EQ(readFrameWire(sv[1], &got, &kind, &err, true),
              FrameRead::Eof);
    writer.join();
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(ServerTcp, LoopbackByteIdenticalToLibrary)
{
    Server::Options opts;
    opts.address = "127.0.0.1:0";
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;
    const std::string bound = server.boundAddress();
    ASSERT_NE(bound, "127.0.0.1:0") << "port must be resolved";

    constexpr int kSlab = 3;
    Client c;
    ASSERT_TRUE(c.connect(bound, &err)) << err;
    EXPECT_EQ(c.ping(), Status::Ok);
    Response r1, r2;
    ASSERT_TRUE(c.call(Request::slabPerf(kSlab), &r1));
    ASSERT_TRUE(c.call(Request::slabPerf(kSlab), &r2));
    ASSERT_EQ(r1.status, Status::Ok);
    ASSERT_EQ(r2.status, Status::Ok);
    EXPECT_EQ(r1.body, r2.body);

    ByteWriter w;
    encodeSlabPerf(w, Campaign::get().slabPerf(kSlab));
    EXPECT_EQ(r1.body, w.bytes());

    // The repeat was served from a cache, and the byte accounting
    // saw both responses.
    StatsSnap snap;
    ASSERT_EQ(c.stats(&snap), Status::Ok);
    const EndpointSnap &slab = snap.ep[size_t(ReqType::Slab)];
    EXPECT_EQ(slab.requests, 2u);
    EXPECT_GE(slab.cacheHits, 1u);
    EXPECT_GE(slab.bytesOut, 2 * uint64_t(r1.body.size()));
    EXPECT_GT(slab.bytesIn, 0u);

    server.stop();
}

TEST(ServerTcp, DripFedFramesReassembleAndFlippedBitIsCaught)
{
    Server::Options opts;
    opts.address = "127.0.0.1:0";
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    int fd = connectTo(server.boundAddress(), &err);
    ASSERT_GE(fd, 0) << err;

    // One byte at a time: the server-side reader must reassemble
    // the frame no matter how the stream is sliced.
    const std::vector<uint8_t> wire = encodeFrame(
        FrameKind::Request, encodeRequestEnvelope(Request::ping(), 0));
    for (size_t i = 0; i < wire.size(); i++) {
        ASSERT_EQ(::write(fd, &wire[i], 1), 1);
        if (i % 5 == 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Frame f;
    ASSERT_EQ(readFrame(fd, &f, &err), FrameRead::Ok) << err;
    {
        ByteReader r(f.payload);
        Response resp;
        ASSERT_TRUE(Response::decode(r, &resp));
        EXPECT_EQ(resp.status, Status::Ok);
    }

    // A single bit flipped in the payload in transit: the frame
    // checksum catches it; the server answers BADREQ (or closes
    // outright) and terminates the stream, exactly like the UNIX
    // transport.
    std::vector<uint8_t> bad = wire;
    bad[kFrameHeaderBytes] ^= 0x40;
    ASSERT_TRUE(writeWire(fd, bad));
    FrameRead rc = readFrame(fd, &f, &err);
    if (rc == FrameRead::Ok) {
        ByteReader r(f.payload);
        Response resp;
        ASSERT_TRUE(Response::decode(r, &resp));
        EXPECT_EQ(resp.status, Status::BadRequest);
        rc = readFrame(fd, &f, &err);
    }
    EXPECT_NE(rc, FrameRead::Ok);
    ::close(fd);

    server.stop();
}

// ---------------------------------------------------------------
// Consistent-hash shard ring
// ---------------------------------------------------------------

std::vector<std::string>
fleetAddrs(int n)
{
    std::vector<std::string> v;
    for (int i = 0; i < n; i++)
        v.push_back("10.0.0." + std::to_string(i + 1) + ":4870");
    return v;
}

TEST(ShardRing, PlacementIgnoresInputOrderAndDuplicates)
{
    const std::vector<std::string> addrs = fleetAddrs(5);
    ShardRing a(addrs);
    std::vector<std::string> shuffled = {addrs[3], addrs[0],
                                         addrs[4], addrs[2],
                                         addrs[1], addrs[0]};
    ShardRing b(shuffled);
    ASSERT_EQ(a.workers(), b.workers());
    for (uint64_t k = 0; k < 10000; k++) {
        uint64_t key = splitmix64(k);
        ASSERT_EQ(a.ownerOf(key), b.ownerOf(key)) << key;
        ASSERT_EQ(a.ownersOf(key, 3), b.ownersOf(key, 3)) << key;
    }
}

TEST(ShardRing, SpreadsKeysRoughlyEvenly)
{
    ShardRing ring(fleetAddrs(4));
    constexpr int kKeys = 100000;
    std::array<int, 4> load{};
    for (uint64_t k = 0; k < kKeys; k++)
        load[ring.ownerOf(splitmix64(k))]++;
    for (int i = 0; i < 4; i++) {
        // With kVnodes points per worker the expected imbalance is
        // a few percent; a 2x band is far outside noise and catches
        // any placement bug.
        EXPECT_GT(load[size_t(i)], kKeys / 8) << "worker " << i;
        EXPECT_LT(load[size_t(i)], kKeys / 2) << "worker " << i;
    }
}

TEST(ShardRing, SingleWorkerChurnRemapsMinimally)
{
    const std::vector<std::string> addrs = fleetAddrs(4);
    const std::string newcomer = "10.0.0.9:4870";
    ShardRing before(addrs);
    std::vector<std::string> plus = addrs;
    plus.push_back(newcomer);
    ShardRing after(plus);

    constexpr int kKeys = 50000;
    int moved = 0, movedBetweenSurvivors = 0;
    for (uint64_t k = 0; k < kKeys; k++) {
        uint64_t key = splitmix64(k);
        const std::string &a =
            before.workers()[before.ownerOf(key)];
        const std::string &b = after.workers()[after.ownerOf(key)];
        if (a != b) {
            moved++;
            if (b != newcomer)
                movedBetweenSurvivors++;
        }
    }
    // Adding a worker only *steals* keys for the newcomer — keys
    // never shuffle between the existing workers...
    EXPECT_EQ(movedBetweenSurvivors, 0);
    // ...and it steals about its fair share, 1/(N+1); the ISSUE
    // bound is <= 2/N of the keyspace.
    EXPECT_GT(moved, kKeys / 20);
    EXPECT_LT(moved, kKeys * 2 / 4);

    // Removing a worker moves only the keys it owned.
    std::vector<std::string> minus = {addrs[0], addrs[2], addrs[3]};
    ShardRing smaller(minus);
    int orphansMoved = 0, survivorsMoved = 0, orphans = 0;
    for (uint64_t k = 0; k < kKeys; k++) {
        uint64_t key = splitmix64(k);
        const std::string &a =
            before.workers()[before.ownerOf(key)];
        const std::string &b =
            smaller.workers()[smaller.ownerOf(key)];
        if (a == addrs[1]) {
            orphans++;
            orphansMoved += (b != a);
        } else {
            survivorsMoved += (b != a);
        }
    }
    EXPECT_EQ(survivorsMoved, 0);
    EXPECT_EQ(orphansMoved, orphans); // every orphan finds a home
    EXPECT_GT(orphans, 0);
    EXPECT_LT(orphans, kKeys * 2 / 4); // <= 2/N of the keyspace
}

TEST(ShardRing, ReplicaSetsDistinctDeterministicAndClamped)
{
    ShardRing ring(fleetAddrs(4));
    for (uint64_t k = 0; k < 2000; k++) {
        uint64_t key = splitmix64(k);
        std::vector<size_t> owners = ring.ownersOf(key, 2);
        ASSERT_EQ(owners.size(), 2u);
        EXPECT_NE(owners[0], owners[1]);
        // The replica set starts at the primary.
        EXPECT_EQ(owners[0], ring.ownerOf(key));
    }
    // Asking for more replicas than workers clamps and still yields
    // all-distinct owners.
    std::vector<size_t> all = ring.ownersOf(12345, 9);
    ASSERT_EQ(all.size(), 4u);
    std::vector<size_t> sorted = all;
    std::sort(sorted.begin(), sorted.end());
    const std::vector<size_t> want = {0, 1, 2, 3};
    EXPECT_EQ(sorted, want);

    ShardRing one(fleetAddrs(1));
    const std::vector<size_t> only = {0};
    EXPECT_EQ(one.ownersOf(5, 3), only);
}

// ---------------------------------------------------------------
// Router fleet
// ---------------------------------------------------------------

TEST(RouterE2E, RelaysByteIdenticalAndRollsUpFleetStats)
{
    Server::Options w1o, w2o;
    w1o.address = testSocketPath("rw1");
    w2o.address = testSocketPath("rw2");
    Server w1(w1o), w2(w2o);
    std::string err;
    ASSERT_TRUE(w1.start(&err)) << err;
    ASSERT_TRUE(w2.start(&err)) << err;

    Router::Options ro;
    ro.address = testSocketPath("rt");
    ro.workers = {w1o.address, w2o.address};
    ro.replicas = 1;
    Router router(ro);
    ASSERT_TRUE(router.start(&err)) << err;

    Client c;
    ASSERT_TRUE(c.connect(ro.address, &err)) << err;
    EXPECT_EQ(c.ping(), Status::Ok);

    // A slab served through the router is byte-identical to the
    // direct library result.
    constexpr int kSlab = 4;
    Response via;
    ASSERT_TRUE(c.call(Request::slabPerf(kSlab), &via))
        << c.lastError();
    ASSERT_EQ(via.status, Status::Ok);
    ByteWriter w;
    encodeSlabPerf(w, Campaign::get().slabPerf(kSlab));
    EXPECT_EQ(via.body, w.bytes());

    // Stats through the router is the fleet roll-up, not a single
    // worker's view.
    StatsSnap snap;
    ASSERT_EQ(c.stats(&snap), Status::Ok);
    EXPECT_EQ(snap.workersKnown, 2u);
    EXPECT_EQ(snap.workersUp, 2u);
    EXPECT_GE(snap.totalRequests(), 2u); // ping + slab, somewhere
    EXPECT_GE(snap.connsAccepted, 1u);   // router's client side

    c.close();
    router.stop();
    w1.stop();
    w2.stop();
}

TEST(RouterE2E, DeadWorkersSlabsFailOverByteIdentical)
{
    Server::Options w1o, w2o;
    w1o.address = testSocketPath("fw1");
    w2o.address = testSocketPath("fw2");
    auto w1 = std::make_unique<Server>(w1o);
    Server w2(w2o);
    std::string err;
    ASSERT_TRUE(w1->start(&err)) << err;
    ASSERT_TRUE(w2.start(&err)) << err;

    Router::Options ro;
    ro.address = testSocketPath("ft");
    ro.workers = {w1o.address, w2o.address};
    ro.replicas = 1; // deterministic primary: reroute only on death
    ro.healthMs = 50;
    Router router(ro);
    ASSERT_TRUE(router.start(&err)) << err;

    // One slab primarily owned by each worker (with 49 slabs split
    // over 2 workers both always own several).
    const ShardRing &ring = router.ring();
    int slabOfW1 = -1, slabOfW2 = -1;
    for (int s = 0; s < phaseCount(); s++) {
        size_t o = ring.ownerOf(Request::slabPerf(s).routingKey());
        if (ring.workers()[o] == w1o.address && slabOfW1 < 0)
            slabOfW1 = s;
        if (ring.workers()[o] == w2o.address && slabOfW2 < 0)
            slabOfW2 = s;
    }
    ASSERT_GE(slabOfW1, 0);
    ASSERT_GE(slabOfW2, 0);

    Client c;
    ASSERT_TRUE(c.connect(ro.address, &err)) << err;
    Response a1, b1;
    ASSERT_TRUE(c.call(Request::slabPerf(slabOfW1), &a1));
    ASSERT_TRUE(c.call(Request::slabPerf(slabOfW2), &b1));
    ASSERT_EQ(a1.status, Status::Ok);
    ASSERT_EQ(b1.status, Status::Ok);

    // Kill the worker that owns slabOfW1. Its slab must keep being
    // served — rerouted to the survivor, byte-identical, because
    // any worker can adopt any slab through the shared store.
    w1->stop();
    Response a2;
    ASSERT_TRUE(c.call(Request::slabPerf(slabOfW1), &a2))
        << c.lastError();
    EXPECT_EQ(a2.status, Status::Ok);
    EXPECT_EQ(a2.body, a1.body);

    // Zero loss across a spread of slabs with one worker down.
    for (int s = 0; s < 8; s++) {
        Response r;
        ASSERT_TRUE(c.call(Request::slabPerf(s), &r))
            << "slab " << s << ": " << c.lastError();
        EXPECT_EQ(r.status, Status::Ok) << "slab " << s;
    }

    StatsSnap snap;
    ASSERT_EQ(c.stats(&snap), Status::Ok);
    EXPECT_GE(snap.reroutes, 1u);
    EXPECT_EQ(snap.workersUp, 1u);
    EXPECT_EQ(snap.workersKnown, 2u);

    // A worker coming back on the same address rejoins after a
    // health probe, without a router restart.
    w1 = std::make_unique<Server>(w1o);
    ASSERT_TRUE(w1->start(&err)) << err;
    for (int i = 0; i < 200 && snap.workersUp != 2; i++) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        ASSERT_EQ(c.stats(&snap), Status::Ok);
    }
    EXPECT_EQ(snap.workersUp, 2u);

    c.close();
    router.stop();
    w2.stop();
    w1->stop();
}

TEST(RouterE2E, MidResponseWorkerDeathIsRetriedInvisibly)
{
    // A fake worker that reads each request, writes half a response
    // frame, and drops the connection — the worst kind of death,
    // mid-stream with valid header bytes already delivered.
    const std::string flakyAddr = testSocketPath("flaky");
    std::string err, flakyBound;
    int lfd = listenOn(flakyAddr, 8, &flakyBound, &err);
    ASSERT_GE(lfd, 0) << err;
    std::atomic<bool> stopFlaky{false};
    std::atomic<int> flakyHits{0};
    std::thread flaky([&] {
        while (!stopFlaky.load()) {
            pollfd p{lfd, POLLIN, 0};
            if (::poll(&p, 1, 20) <= 0)
                continue;
            int fd = ::accept(lfd, nullptr, nullptr);
            if (fd < 0)
                continue;
            Frame f;
            std::string e2;
            if (readFrame(fd, &f, &e2) == FrameRead::Ok) {
                flakyHits++;
                std::vector<uint8_t> resp =
                    encodeFrame(FrameKind::Response, somePayload());
                [[maybe_unused]] ssize_t n =
                    ::write(fd, resp.data(), resp.size() / 2);
            }
            ::close(fd);
        }
    });

    Server::Options wo;
    wo.address = testSocketPath("solid");
    Server real(wo);
    ASSERT_TRUE(real.start(&err)) << err;

    Router::Options ro;
    ro.address = testSocketPath("frt");
    ro.workers = {flakyAddr, wo.address};
    ro.replicas = 1;
    Router router(ro);
    ASSERT_TRUE(router.start(&err)) << err;

    // A slab whose primary is the flaky worker: the router sends
    // there, sees the truncated response, marks it down, and
    // retries on the real worker — invisible to the client.
    const ShardRing &ring = router.ring();
    int slab = -1;
    for (int s = 0; s < phaseCount() && slab < 0; s++) {
        size_t o = ring.ownerOf(Request::slabPerf(s).routingKey());
        if (ring.workers()[o] == flakyAddr)
            slab = s;
    }
    ASSERT_GE(slab, 0);

    Client c;
    ASSERT_TRUE(c.connect(ro.address, &err)) << err;
    Response r;
    ASSERT_TRUE(c.call(Request::slabPerf(slab), &r))
        << c.lastError();
    EXPECT_EQ(r.status, Status::Ok);
    ByteWriter w;
    encodeSlabPerf(w, Campaign::get().slabPerf(slab));
    EXPECT_EQ(r.body, w.bytes());
    EXPECT_GE(flakyHits.load(), 1);

    StatsSnap snap;
    ASSERT_EQ(c.stats(&snap), Status::Ok);
    EXPECT_GE(snap.reroutes, 1u);

    c.close();
    router.stop();
    real.stop();
    stopFlaky = true;
    flaky.join();
    ::close(lfd);
    unlinkIfUnix(flakyAddr);
}

// ---------------------------------------------------------------
// Client retry policy
// ---------------------------------------------------------------

TEST(ClientRetry, BusyRetriesUntilCapacityFrees)
{
    GatedHandler gate;
    Server::Options opts;
    opts.address = testSocketPath("busyretry");
    opts.exec.queueBound = 1;
    opts.exec.workers = 1;
    opts.exec.handler = std::ref(gate);
    Server server(opts);
    std::string err;
    ASSERT_TRUE(server.start(&err)) << err;

    // Fill the single worker, then the single queue slot.
    Response r1, r2;
    std::thread t1([&] {
        Client c;
        if (c.connect(opts.address))
            c.call(Request::slabPerf(0), &r1);
    });
    while (gate.invocations.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::thread t2([&] {
        Client c;
        if (c.connect(opts.address))
            c.call(Request::slabPerf(1), &r2);
    });
    while (server.executor().snapshot().queueDepth == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // The service is now saturated: new work bounces with BUSY. A
    // retrying client must ride the window out and succeed once the
    // gate opens.
    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(80));
        gate.release();
    });
    Client probe;
    ASSERT_TRUE(probe.connect(opts.address, &err)) << err;
    probe.setRetryPolicy(RetryPolicy{50, 2});
    Response r;
    ASSERT_TRUE(probe.call(Request::slabPerf(2), &r))
        << probe.lastError();
    EXPECT_EQ(r.status, Status::Ok);

    releaser.join();
    t1.join();
    t2.join();
    EXPECT_EQ(r1.status, Status::Ok);
    EXPECT_EQ(r2.status, Status::Ok);
    server.stop();
}

TEST(ClientRetry, ConnectRetriesUntilServerAppears)
{
    const std::string addr = testSocketPath("late");
    ::unlink(addr.c_str());
    Server::Options opts;
    opts.address = addr;
    Server server(opts);
    std::thread starter([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
        std::string serr;
        server.start(&serr);
    });

    // The daemon does not exist yet when the first connect attempt
    // fires; the backoff schedule must span its startup delay.
    Client c;
    c.setRetryPolicy(RetryPolicy{10, 15});
    std::string err;
    ASSERT_TRUE(c.connect(addr, &err)) << err;
    EXPECT_EQ(c.ping(), Status::Ok);
    starter.join();
    c.close();
    server.stop();

    // Zero retries (the default) still fails fast on a cold
    // address.
    Client fast;
    std::string ferr;
    EXPECT_FALSE(fast.connect(testSocketPath("nobody"), &ferr));
    EXPECT_FALSE(ferr.empty());
}

} // namespace
} // namespace cisa
