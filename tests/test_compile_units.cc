/**
 * @file
 * Focused unit tests of individual compiler mechanisms on hand-built
 * IR: LVN redundancy elimination and copy propagation, DCE, branch
 * displacement relaxation, register-allocation spilling and
 * rematerialization, caller-saves, RMW folding, if-conversion
 * transforms, and the absolute-address fold.
 */

#include <gtest/gtest.h>

#include "compiler/analysis.hh"
#include "compiler/compiler.hh"
#include "compiler/exec.hh"
#include "compiler/interp.hh"
#include "compiler/passes/dce.hh"
#include "compiler/passes/licm.hh"
#include "compiler/passes/lvn.hh"
#include "compiler/passes/sccp.hh"
#include "compiler/passes/unroll.hh"

namespace cisa
{
namespace
{

/** Module with one region and an empty main; caller fills blocks. */
IrModule
shell()
{
    IrModule m;
    m.name = "unit";
    MemRegion r;
    r.name = "a";
    r.elem = ElemKind::I32;
    r.count = 256;
    r.init = RegionInit::RandomInt;
    r.seed = 11;
    m.regions.push_back(r);
    return m;
}

int64_t
runBoth(const IrModule &m, const FeatureSet &fs,
        uint64_t *machine_loads = nullptr)
{
    CompileOptions opts;
    opts.target = fs;
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage i1 = MemImage::build(ir, fs.widthBits());
    ExecResult ref = interpret(ir, i1);
    MemImage i2 = MemImage::build(ir, fs.widthBits());
    ExecResult got = executeMachine(prog, i2);
    EXPECT_EQ(got.retVal, ref.retVal);
    EXPECT_EQ(got.intChecksum, ref.intChecksum);
    if (machine_loads)
        *machine_loads = got.loads;
    return got.retVal;
}

TEST(Lvn, EliminatesAndPropagates)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int addr = b.gep(base, -1, 1, 4);
    int x = b.load(addr, Type::I32);
    // The same expression twice.
    int y1 = b.arithImm(IrOp::Add, x, 9, Type::I32);
    int y2 = b.arithImm(IrOp::Add, x, 9, Type::I32);
    int s = b.arith(IrOp::Add, y1, y2, Type::I32);
    b.ret(s);
    m.validate();

    IrFunction f = m.funcs[0];
    LvnStats st = runLvn(f, 64);
    EXPECT_EQ(st.exprsEliminated, 1);
    int removed = runDce(f);
    EXPECT_GE(removed, 1); // the copy falls dead after propagation

    // Semantics unchanged end-to-end.
    runBoth(m, FeatureSet::superset());
}

TEST(Lvn, PressureBudgetSuppressesCse)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    // Lots of live values: budget at depth 8 goes negative.
    std::vector<int> live;
    for (int k = 0; k < 12; k++)
        live.push_back(b.constInt(k, Type::I32));
    int x = b.constInt(7, Type::I32);
    int y1 = b.arithImm(IrOp::Mul, x, 3, Type::I32);
    int y2 = b.arithImm(IrOp::Mul, x, 3, Type::I32);
    int s = b.arith(IrOp::Add, y1, y2, Type::I32);
    for (int v : live)
        b.arithInto(s, IrOp::Add, s, v, Type::I32);
    b.ret(s);
    m.validate();

    IrFunction f8 = m.funcs[0];
    LvnStats st8 = runLvn(f8, 8);
    EXPECT_EQ(st8.exprsEliminated, 0);
    EXPECT_GT(st8.skippedForPressure, 0);
    IrFunction f64 = m.funcs[0];
    LvnStats st64 = runLvn(f64, 64);
    EXPECT_GE(st64.exprsEliminated, 1);
}

TEST(Lvn, LoadCseKilledByStores)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int addr = b.gep(base, -1, 1, 8);
    int x1 = b.load(addr, Type::I32);
    int t = b.arithImm(IrOp::Add, x1, 1, Type::I32);
    b.store(addr, t, Type::I32); // kills the remembered load
    int x2 = b.load(addr, Type::I32);
    int s = b.arith(IrOp::Add, x1, x2, Type::I32);
    b.ret(s);
    m.validate();

    IrFunction f = m.funcs[0];
    LvnStats st = runLvn(f, 64);
    EXPECT_EQ(st.loadsEliminated, 0);
    runBoth(m, FeatureSet::superset());
}

TEST(Regalloc, RematerializationAvoidsSlots)
{
    // A function with many constants under pressure: remat should
    // fire rather than spilling constant slots.
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    std::vector<int> cs;
    for (int k = 0; k < 24; k++)
        cs.push_back(b.constInt(1000 + k, Type::I32));
    int s = b.constInt(0, Type::I32);
    // Use all constants twice so they stay live a while.
    for (int round = 0; round < 2; round++) {
        for (int c : cs)
            b.arithInto(s, IrOp::Add, s, c, Type::I32);
    }
    b.ret(s);
    m.validate();

    CompileOptions opts;
    opts.target = FeatureSet::parse("x86-8D-32W-P");
    MachineProgram prog = compile(m, opts);
    EXPECT_GT(prog.stats.remats, 0u);
    runBoth(m, opts.target);
}

TEST(Regalloc, CallerSavesAroundCalls)
{
    IrModule m = shell();
    IrBuilder b(m);
    // main: keeps values live across a call.
    b.startFunc("main");
    int a = b.constInt(41, Type::I32);
    int c = b.constInt(59, Type::I32);
    b.call(1);
    int s = b.arith(IrOp::Add, a, c, Type::I32);
    b.ret(s);
    // leaf: clobbers low registers.
    b.startFunc("leaf");
    int base = b.baseAddr(0);
    int acc = b.constInt(5, Type::I32);
    for (int k = 0; k < 6; k++) {
        int v = b.load(b.gep(base, -1, 1, k * 4), Type::I32);
        b.arithInto(acc, IrOp::Add, acc, v, Type::I32);
    }
    int out = b.gep(base, -1, 1, 128);
    b.store(out, acc, Type::I32);
    b.ret();
    m.validate();

    // Constants survive the call on every depth.
    for (const char *fs : {"x86-8D-32W-P", "x86-64D-64W-P"}) {
        EXPECT_EQ(runBoth(m, FeatureSet::parse(fs)), 100)
            << fs;
    }
}

TEST(Encode, BranchRelaxation)
{
    // A loop whose body is > 127 bytes forces a rel32 backedge;
    // a tiny loop keeps rel8.
    auto build = [&](int body) {
        IrModule m = shell();
        IrBuilder b(m);
        b.startFunc("main");
        int base = b.baseAddr(0);
        int acc = b.constInt(0, Type::I32);
        int i = b.constInt(0, Type::PtrInt);
        int loop = b.newBlock();
        int exit = b.newBlock();
        b.jmp(loop);
        b.setBlock(loop);
        for (int k = 0; k < body; k++) {
            int v = b.load(b.gep(base, -1, 1, (k % 64) * 4),
                           Type::I32);
            b.arithInto(acc, IrOp::Add, acc, v, Type::I32);
        }
        b.arithImmInto(i, IrOp::Add, i, 1, Type::PtrInt);
        int c = b.icmpImm(Cond::Lt, i, 4);
        b.br(c, loop, exit, 0.75, true);
        b.setBlock(exit);
        b.ret(acc);
        m.validate();
        CompileOptions opts;
        opts.target = FeatureSet::x86_64();
        return compile(m, opts);
    };
    MachineProgram small = build(2);
    MachineProgram big = build(40);
    auto backedge_len = [](const MachineProgram &p) {
        for (const auto &f : p.funcs) {
            for (const auto &blk : f.blocks) {
                const MachineInstr &t = blk.instrs.back();
                if (t.op == Op::Branch &&
                    t.addr > p.funcs[0].blocks[0].instrs[0].addr)
                    return int(t.len);
            }
        }
        return -1;
    };
    EXPECT_LT(backedge_len(small), backedge_len(big));
}

TEST(Isel, AbsoluteAddressingDropsBaseRegisters)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int i = b.constInt(3, Type::PtrInt);
    int v = b.load(b.gep(base, i, 4, 8), Type::I32);
    b.ret(v);
    m.validate();
    CompileOptions opts;
    opts.target = FeatureSet::x86_64();
    MachineProgram prog = compile(m, opts);
    // The load uses [disp + idx*4]; no base register.
    bool found = false;
    for (const auto &f : prog.funcs) {
        for (const auto &blk : f.blocks) {
            for (const auto &ins : blk.instrs) {
                if (ins.op == Op::Load &&
                    ins.form == MemForm::Load) {
                    EXPECT_LT(ins.mem.base, 0);
                    EXPECT_GE(ins.mem.index, 0);
                    EXPECT_GT(ins.mem.disp, 0x1000);
                    found = true;
                }
            }
        }
    }
    EXPECT_TRUE(found);
    runBoth(m, opts.target);
}

TEST(Isel, RmwFoldsOnX86Only)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int addr = b.gep(base, -1, 1, 16);
    int v = b.load(addr, Type::I32);
    int v2 = b.arithImm(IrOp::Add, v, 7, Type::I32);
    b.store(addr, v2, Type::I32);
    int back = b.load(addr, Type::I32);
    b.ret(back);
    m.validate();

    CompileOptions opts;
    opts.target = FeatureSet::x86_64();
    opts.enableLvn = false;
    MachineProgram cisc = compile(m, opts);
    bool has_rmw = false;
    for (const auto &f : cisc.funcs) {
        for (const auto &blk : f.blocks) {
            for (const auto &ins : blk.instrs)
                has_rmw |= ins.form == MemForm::LoadOpStore;
        }
    }
    EXPECT_TRUE(has_rmw);

    opts.target = FeatureSet::parse("microx86-16D-64W-P");
    MachineProgram risc = compile(m, opts);
    for (const auto &f : risc.funcs) {
        for (const auto &blk : f.blocks) {
            for (const auto &ins : blk.instrs)
                EXPECT_NE(ins.form, MemForm::LoadOpStore);
        }
    }
    EXPECT_EQ(runBoth(m, FeatureSet::x86_64()),
              runBoth(m, FeatureSet::parse("microx86-16D-64W-P")));
}

TEST(IfConvert, ConvertsUnpredictableDiamond)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int acc = b.constInt(0, Type::I32);
    int i = b.constInt(0, Type::PtrInt);
    int loop = b.newBlock();
    int t = b.newBlock();
    int f = b.newBlock();
    int join = b.newBlock();
    int exit = b.newBlock();
    b.jmp(loop);
    b.setBlock(loop);
    int v = b.load(b.gep(base, i, 4, 0), Type::I32);
    int bit = b.arithImm(IrOp::And, v, 1, Type::I32);
    int c = b.icmpImm(Cond::Ne, bit, 0);
    b.br(c, t, f, 0.5, false);
    b.setBlock(t);
    b.arithInto(acc, IrOp::Add, acc, v, Type::I32);
    b.jmp(join);
    b.setBlock(f);
    b.arithInto(acc, IrOp::Sub, acc, v, Type::I32);
    b.jmp(join);
    b.setBlock(join);
    b.arithImmInto(i, IrOp::Add, i, 1, Type::PtrInt);
    int cc = b.icmpImm(Cond::Lt, i, 64);
    b.br(cc, loop, exit, 0.98, true);
    b.setBlock(exit);
    b.ret(acc);
    m.validate();

    CompileOptions opts;
    opts.target = FeatureSet::parse("x86-32D-64W-F");
    CompileReport rep;
    compile(m, opts, &rep);
    EXPECT_EQ(rep.ifc.diamondsConverted, 1);

    // Identical result with and without predication.
    EXPECT_EQ(runBoth(m, FeatureSet::parse("x86-32D-64W-F")),
              runBoth(m, FeatureSet::parse("x86-32D-64W-P")));
}

/** Interpret a module standalone (fresh image) for a retval. */
int64_t
interpRet(const IrModule &m)
{
    MemImage img = MemImage::build(m, 64);
    ExecResult r = interpret(m, img);
    EXPECT_FALSE(r.ranOut);
    return r.retVal;
}

/** Build the analysis bundle LICM wants and run it on funcs[0]. */
LicmStats
licmOn(IrModule &m)
{
    IrFunction &f = m.funcs[0];
    Cfg cfg = Cfg::build(f);
    DomTree dom = DomTree::build(f, cfg);
    LoopInfo li = LoopInfo::build(f, cfg, dom);
    Liveness lv = Liveness::build(f, cfg);
    return runLicm(f, cfg, li, lv);
}

TEST(Dce, RunsWithLvnDisabled)
{
    // The historical bug: dead-code elimination was nested under the
    // LVN flag, so disabling LVN silently disabled cleanup too.
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int addr = b.gep(base, -1, 1, 4);
    int x = b.load(addr, Type::I32);
    b.arithImm(IrOp::Mul, x, 3, Type::I32); // dead
    int s = b.arithImm(IrOp::Add, x, 1, Type::I32);
    b.ret(s);
    m.validate();

    CompileOptions opts;
    opts.target = FeatureSet::superset();
    opts.enableLvn = false;
    opts.optLevel = 1;
    CompileReport rep;
    IrModule ir;
    compile(m, opts, &rep, &ir);
    EXPECT_EQ(rep.pipeline, "dce,vectorize,ifconvert,dce");
    EXPECT_GT(rep.dceRemoved, 0);
    for (const auto &i : ir.funcs[0].blocks[0].instrs)
        EXPECT_NE(i.op, IrOp::Mul);
    runBoth(m, opts.target);
}

TEST(Dce, CleansUpAfterIfConversion)
{
    // A convertible diamond plus a dead multiply in the join block:
    // the fixed pipeline must run DCE again after if-conversion.
    auto build = [] {
        IrModule m = shell();
        IrBuilder b(m);
        b.startFunc("main");
        int base = b.baseAddr(0);
        int acc = b.constInt(0, Type::I32);
        int i = b.constInt(0, Type::PtrInt);
        int loop = b.newBlock();
        int t = b.newBlock();
        int f = b.newBlock();
        int join = b.newBlock();
        int exit = b.newBlock();
        b.jmp(loop);
        b.setBlock(loop);
        int v = b.load(b.gep(base, i, 4, 0), Type::I32);
        int bit = b.arithImm(IrOp::And, v, 1, Type::I32);
        int c = b.icmpImm(Cond::Ne, bit, 0);
        b.br(c, t, f, 0.5, false);
        b.setBlock(t);
        b.arithInto(acc, IrOp::Add, acc, v, Type::I32);
        b.jmp(join);
        b.setBlock(f);
        b.arithInto(acc, IrOp::Sub, acc, v, Type::I32);
        b.jmp(join);
        b.setBlock(join);
        b.arith(IrOp::Mul, v, v, Type::I32); // dead
        b.arithImmInto(i, IrOp::Add, i, 1, Type::PtrInt);
        int cc = b.icmpImm(Cond::Lt, i, 64);
        b.br(cc, loop, exit, 0.98, true);
        b.setBlock(exit);
        b.ret(acc);
        m.validate();
        return m;
    };
    FeatureSet fs = FeatureSet::parse("x86-32D-64W-F");

    IrModule m = build();
    CompileOptions opts;
    opts.target = fs;
    opts.passOverride = "ifconvert";
    CompileReport rep1;
    compile(m, opts, &rep1);
    EXPECT_EQ(rep1.ifc.diamondsConverted, 1);
    EXPECT_EQ(rep1.dceRemoved, 0); // no DCE stage ran at all

    opts.passOverride = "ifconvert,dce";
    CompileReport rep2;
    IrModule ir2;
    compile(m, opts, &rep2, &ir2);
    EXPECT_EQ(rep2.ifc.diamondsConverted, 1);
    EXPECT_GT(rep2.dceRemoved, 0); // the dead multiply falls here
    runBoth(m, fs);
}

TEST(Licm, HoistsInvariantArithmetic)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int k = b.constInt(12, Type::I32);
    int acc = b.constInt(0, Type::I32);
    int i = b.constInt(0, Type::I32);
    int loop = b.newBlock();
    int exit = b.newBlock();
    b.jmp(loop);
    b.setBlock(loop);
    int inv = b.arithImm(IrOp::Mul, k, 3, Type::I32);
    b.arithInto(acc, IrOp::Add, acc, inv, Type::I32);
    b.arithImmInto(i, IrOp::Add, i, 1, Type::I32);
    int c = b.icmpImm(Cond::Lt, i, 8);
    b.br(c, loop, exit, 0.9, true);
    b.setBlock(exit);
    b.ret(acc);
    m.validate();

    size_t loop_before = m.funcs[0].blocks[1].instrs.size();
    LicmStats st = licmOn(m);
    EXPECT_GE(st.hoisted, 1);
    EXPECT_EQ(st.loopsSkipped, 0);
    EXPECT_LT(m.funcs[0].blocks[1].instrs.size(), loop_before);
    m.validate();
    EXPECT_EQ(interpRet(m), 8 * 12 * 3);
}

TEST(Licm, RefusesToClobberLiveInRedefinition)
{
    // x carries 7 into the first iteration, then is redefined to 36
    // inside the loop. Hoisting the redefinition would lose the 7.
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int k = b.constInt(12, Type::I32);
    int x = b.constInt(7, Type::I32);
    int acc = b.constInt(0, Type::I32);
    int i = b.constInt(0, Type::I32);
    int loop = b.newBlock();
    int exit = b.newBlock();
    b.jmp(loop);
    b.setBlock(loop);
    b.arithInto(acc, IrOp::Add, acc, x, Type::I32); // uses old x
    b.arithImmInto(x, IrOp::Mul, k, 3, Type::I32);  // redefines x
    b.arithImmInto(i, IrOp::Add, i, 1, Type::I32);
    int c = b.icmpImm(Cond::Lt, i, 8);
    b.br(c, loop, exit, 0.9, true);
    b.setBlock(exit);
    b.ret(acc);
    m.validate();

    LicmStats st = licmOn(m);
    EXPECT_EQ(st.hoisted, 0);
    EXPECT_EQ(interpRet(m), 7 + 7 * 12 * 3);
}

TEST(Licm, HoistsHeaderLoadOnlyWithoutStores)
{
    auto build = [](bool with_store) {
        IrModule m = shell();
        IrBuilder b(m);
        b.startFunc("main");
        int base = b.baseAddr(0);
        int addr = b.gep(base, -1, 1, 8);
        int out = b.gep(base, -1, 1, 512);
        int acc = b.constInt(0, Type::I32);
        int i = b.constInt(0, Type::I32);
        int loop = b.newBlock();
        int exit = b.newBlock();
        b.jmp(loop);
        b.setBlock(loop);
        int v = b.load(addr, Type::I32);
        b.arithInto(acc, IrOp::Add, acc, v, Type::I32);
        if (with_store)
            b.store(out, acc, Type::I32);
        b.arithImmInto(i, IrOp::Add, i, 1, Type::I32);
        int c = b.icmpImm(Cond::Lt, i, 8);
        b.br(c, loop, exit, 0.9, true);
        b.setBlock(exit);
        b.ret(acc);
        m.validate();
        return m;
    };

    IrModule clean = build(false);
    int64_t want_clean = interpRet(clean);
    LicmStats st1 = licmOn(clean);
    EXPECT_EQ(st1.loadsHoisted, 1);
    clean.validate();
    EXPECT_EQ(interpRet(clean), want_clean);

    IrModule stores = build(true);
    int64_t want_stores = interpRet(stores);
    LicmStats st2 = licmOn(stores);
    EXPECT_EQ(st2.loadsHoisted, 0); // a store poisons the loop
    EXPECT_EQ(interpRet(stores), want_stores);
}

TEST(Sccp, FoldsConstantChains)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int a = b.constInt(5, Type::I32);
    int x = b.arithImm(IrOp::Mul, a, 3, Type::I32); // 15
    int y = b.arithImm(IrOp::Add, x, 7, Type::I32); // 22
    int z = b.arith(IrOp::Xor, y, x, Type::I32);    // 25
    b.ret(z);
    m.validate();

    SccpStats st = runSccp(m.funcs[0], 64);
    EXPECT_EQ(st.constsFolded, 3);
    EXPECT_EQ(st.branchesFolded, 0);
    for (const auto &i : m.funcs[0].blocks[0].instrs) {
        if (i.hasDst()) {
            EXPECT_EQ(i.op, IrOp::ConstInt);
        }
    }
    m.validate();
    EXPECT_EQ(interpRet(m), (22 ^ 15));
}

TEST(Sccp, FoldsBranchesAndPrunesUnreachable)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int a = b.constInt(3, Type::I32);
    int bt = b.newBlock();
    int bf = b.newBlock();
    int c = b.icmpImm(Cond::Lt, a, 5); // always 1
    b.br(c, bt, bf, 0.5, false);
    b.setBlock(bt);
    int x = b.constInt(111, Type::I32);
    b.ret(x);
    b.setBlock(bf);
    int y = b.constInt(222, Type::I32);
    b.ret(y);
    m.validate();

    SccpStats st = runSccp(m.funcs[0], 64);
    EXPECT_EQ(st.branchesFolded, 1);
    EXPECT_EQ(st.blocksUnreachable, 1);
    EXPECT_EQ(m.funcs[0].blocks[0].terminator().op, IrOp::Jmp);
    EXPECT_EQ(m.funcs[0].blocks[size_t(bf)].instrs.size(), 1u);
    m.validate();
    EXPECT_EQ(interpRet(m), 111);
}

TEST(Sccp, LeavesDivAndPredicatedDefsAlone)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int p = b.constInt(1, Type::I32);
    int a = b.constInt(6, Type::I32);
    b.arithImm(IrOp::Div, a, 3, Type::I32); // quotient not folded
    int t = b.arithImm(IrOp::Add, a, 1, Type::I32);
    // Hand-predicate the add: a false predicate would keep t's old
    // value, so the def is a merge and must not fold.
    IrInstr &pred = m.funcs[0].blocks[0].instrs.back();
    pred.predVreg = p;
    pred.predSense = true;
    b.ret(t);
    m.validate();

    SccpStats st = runSccp(m.funcs[0], 64);
    EXPECT_EQ(st.constsFolded, 0);
    EXPECT_EQ(interpRet(m), 7);
}

TEST(Unroll, FullyUnrollsCountedLoop)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int acc = b.constInt(0, Type::I32);
    int i = b.constInt(0, Type::I32);
    int loop = b.newBlock();
    int exit = b.newBlock();
    b.jmp(loop);
    b.setBlock(loop);
    b.arithInto(acc, IrOp::Add, acc, i, Type::I32);
    b.arithImmInto(i, IrOp::Add, i, 1, Type::I32);
    int c = b.icmpImm(Cond::Lt, i, 4);
    b.br(c, loop, exit, 0.75, true);
    b.setBlock(exit);
    b.ret(acc);
    m.validate();

    UnrollStats st = runUnroll(m.funcs[0], UnrollParams{});
    EXPECT_EQ(st.loopsUnrolled, 1);
    EXPECT_EQ(st.loopsRejected, 0);
    EXPECT_EQ(st.instrsAdded, 5); // 4*(body of 2) + jmp, was 4
    for (const auto &ins : m.funcs[0].blocks[1].instrs)
        EXPECT_NE(ins.op, IrOp::Br); // back edge is gone
    m.validate();
    EXPECT_EQ(interpRet(m), 0 + 1 + 2 + 3);
    runBoth(m, FeatureSet::superset());
}

TEST(Unroll, RespectsTripAndSizeBudgets)
{
    auto build = [](int64_t bound) {
        IrModule m = shell();
        IrBuilder b(m);
        b.startFunc("main");
        int acc = b.constInt(0, Type::I32);
        int i = b.constInt(0, Type::I32);
        int loop = b.newBlock();
        int exit = b.newBlock();
        b.jmp(loop);
        b.setBlock(loop);
        b.arithInto(acc, IrOp::Add, acc, i, Type::I32);
        b.arithImmInto(i, IrOp::Add, i, 1, Type::I32);
        int c = b.icmpImm(Cond::Lt, i, bound);
        b.br(c, loop, exit, 0.75, true);
        b.setBlock(exit);
        b.ret(acc);
        m.validate();
        return m;
    };

    // 100 trips exceeds the default trip ceiling.
    IrModule big = build(100);
    UnrollStats st1 = runUnroll(big.funcs[0], UnrollParams{});
    EXPECT_EQ(st1.loopsUnrolled, 0);
    EXPECT_EQ(st1.loopsRejected, 1);
    EXPECT_TRUE(big.funcs[0].blocks[1].terminator().op == IrOp::Br);

    // 4 trips fits the trip ceiling but not a tiny size budget.
    IrModule tight = build(4);
    UnrollParams p;
    p.maxTrip = 16;
    p.maxExpandedInstrs = 8; // expansion needs 9
    UnrollStats st2 = runUnroll(tight.funcs[0], p);
    EXPECT_EQ(st2.loopsUnrolled, 0);
    EXPECT_EQ(st2.loopsRejected, 1);
}

TEST(Unroll, RequiresConstantInit)
{
    // The induction variable starts from a loaded value: the trip
    // count is unknown, so the loop is not even a candidate.
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int acc = b.constInt(0, Type::I32);
    int i = b.load(b.gep(base, -1, 1, 0), Type::I32);
    b.arithImmInto(i, IrOp::And, i, 3, Type::I32);
    int loop = b.newBlock();
    int exit = b.newBlock();
    b.jmp(loop);
    b.setBlock(loop);
    b.arithInto(acc, IrOp::Add, acc, i, Type::I32);
    b.arithImmInto(i, IrOp::Add, i, 1, Type::I32);
    int c = b.icmpImm(Cond::Lt, i, 8);
    b.br(c, loop, exit, 0.75, true);
    b.setBlock(exit);
    b.ret(acc);
    m.validate();

    UnrollStats st = runUnroll(m.funcs[0], UnrollParams{});
    EXPECT_EQ(st.loopsUnrolled, 0);
    EXPECT_EQ(st.loopsRejected, 0); // shape failure, not budget
}

} // namespace
} // namespace cisa
