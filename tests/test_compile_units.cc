/**
 * @file
 * Focused unit tests of individual compiler mechanisms on hand-built
 * IR: LVN redundancy elimination and copy propagation, DCE, branch
 * displacement relaxation, register-allocation spilling and
 * rematerialization, caller-saves, RMW folding, if-conversion
 * transforms, and the absolute-address fold.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "compiler/exec.hh"
#include "compiler/interp.hh"
#include "compiler/passes/dce.hh"
#include "compiler/passes/lvn.hh"

namespace cisa
{
namespace
{

/** Module with one region and an empty main; caller fills blocks. */
IrModule
shell()
{
    IrModule m;
    m.name = "unit";
    MemRegion r;
    r.name = "a";
    r.elem = ElemKind::I32;
    r.count = 256;
    r.init = RegionInit::RandomInt;
    r.seed = 11;
    m.regions.push_back(r);
    return m;
}

int64_t
runBoth(const IrModule &m, const FeatureSet &fs,
        uint64_t *machine_loads = nullptr)
{
    CompileOptions opts;
    opts.target = fs;
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage i1 = MemImage::build(ir, fs.widthBits());
    ExecResult ref = interpret(ir, i1);
    MemImage i2 = MemImage::build(ir, fs.widthBits());
    ExecResult got = executeMachine(prog, i2);
    EXPECT_EQ(got.retVal, ref.retVal);
    EXPECT_EQ(got.intChecksum, ref.intChecksum);
    if (machine_loads)
        *machine_loads = got.loads;
    return got.retVal;
}

TEST(Lvn, EliminatesAndPropagates)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int addr = b.gep(base, -1, 1, 4);
    int x = b.load(addr, Type::I32);
    // The same expression twice.
    int y1 = b.arithImm(IrOp::Add, x, 9, Type::I32);
    int y2 = b.arithImm(IrOp::Add, x, 9, Type::I32);
    int s = b.arith(IrOp::Add, y1, y2, Type::I32);
    b.ret(s);
    m.validate();

    IrFunction f = m.funcs[0];
    LvnStats st = runLvn(f, 64);
    EXPECT_EQ(st.exprsEliminated, 1);
    int removed = runDce(f);
    EXPECT_GE(removed, 1); // the copy falls dead after propagation

    // Semantics unchanged end-to-end.
    runBoth(m, FeatureSet::superset());
}

TEST(Lvn, PressureBudgetSuppressesCse)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    // Lots of live values: budget at depth 8 goes negative.
    std::vector<int> live;
    for (int k = 0; k < 12; k++)
        live.push_back(b.constInt(k, Type::I32));
    int x = b.constInt(7, Type::I32);
    int y1 = b.arithImm(IrOp::Mul, x, 3, Type::I32);
    int y2 = b.arithImm(IrOp::Mul, x, 3, Type::I32);
    int s = b.arith(IrOp::Add, y1, y2, Type::I32);
    for (int v : live)
        b.arithInto(s, IrOp::Add, s, v, Type::I32);
    b.ret(s);
    m.validate();

    IrFunction f8 = m.funcs[0];
    LvnStats st8 = runLvn(f8, 8);
    EXPECT_EQ(st8.exprsEliminated, 0);
    EXPECT_GT(st8.skippedForPressure, 0);
    IrFunction f64 = m.funcs[0];
    LvnStats st64 = runLvn(f64, 64);
    EXPECT_GE(st64.exprsEliminated, 1);
}

TEST(Lvn, LoadCseKilledByStores)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int addr = b.gep(base, -1, 1, 8);
    int x1 = b.load(addr, Type::I32);
    int t = b.arithImm(IrOp::Add, x1, 1, Type::I32);
    b.store(addr, t, Type::I32); // kills the remembered load
    int x2 = b.load(addr, Type::I32);
    int s = b.arith(IrOp::Add, x1, x2, Type::I32);
    b.ret(s);
    m.validate();

    IrFunction f = m.funcs[0];
    LvnStats st = runLvn(f, 64);
    EXPECT_EQ(st.loadsEliminated, 0);
    runBoth(m, FeatureSet::superset());
}

TEST(Regalloc, RematerializationAvoidsSlots)
{
    // A function with many constants under pressure: remat should
    // fire rather than spilling constant slots.
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    std::vector<int> cs;
    for (int k = 0; k < 24; k++)
        cs.push_back(b.constInt(1000 + k, Type::I32));
    int s = b.constInt(0, Type::I32);
    // Use all constants twice so they stay live a while.
    for (int round = 0; round < 2; round++) {
        for (int c : cs)
            b.arithInto(s, IrOp::Add, s, c, Type::I32);
    }
    b.ret(s);
    m.validate();

    CompileOptions opts;
    opts.target = FeatureSet::parse("x86-8D-32W-P");
    MachineProgram prog = compile(m, opts);
    EXPECT_GT(prog.stats.remats, 0u);
    runBoth(m, opts.target);
}

TEST(Regalloc, CallerSavesAroundCalls)
{
    IrModule m = shell();
    IrBuilder b(m);
    // main: keeps values live across a call.
    b.startFunc("main");
    int a = b.constInt(41, Type::I32);
    int c = b.constInt(59, Type::I32);
    b.call(1);
    int s = b.arith(IrOp::Add, a, c, Type::I32);
    b.ret(s);
    // leaf: clobbers low registers.
    b.startFunc("leaf");
    int base = b.baseAddr(0);
    int acc = b.constInt(5, Type::I32);
    for (int k = 0; k < 6; k++) {
        int v = b.load(b.gep(base, -1, 1, k * 4), Type::I32);
        b.arithInto(acc, IrOp::Add, acc, v, Type::I32);
    }
    int out = b.gep(base, -1, 1, 128);
    b.store(out, acc, Type::I32);
    b.ret();
    m.validate();

    // Constants survive the call on every depth.
    for (const char *fs : {"x86-8D-32W-P", "x86-64D-64W-P"}) {
        EXPECT_EQ(runBoth(m, FeatureSet::parse(fs)), 100)
            << fs;
    }
}

TEST(Encode, BranchRelaxation)
{
    // A loop whose body is > 127 bytes forces a rel32 backedge;
    // a tiny loop keeps rel8.
    auto build = [&](int body) {
        IrModule m = shell();
        IrBuilder b(m);
        b.startFunc("main");
        int base = b.baseAddr(0);
        int acc = b.constInt(0, Type::I32);
        int i = b.constInt(0, Type::PtrInt);
        int loop = b.newBlock();
        int exit = b.newBlock();
        b.jmp(loop);
        b.setBlock(loop);
        for (int k = 0; k < body; k++) {
            int v = b.load(b.gep(base, -1, 1, (k % 64) * 4),
                           Type::I32);
            b.arithInto(acc, IrOp::Add, acc, v, Type::I32);
        }
        b.arithImmInto(i, IrOp::Add, i, 1, Type::PtrInt);
        int c = b.icmpImm(Cond::Lt, i, 4);
        b.br(c, loop, exit, 0.75, true);
        b.setBlock(exit);
        b.ret(acc);
        m.validate();
        CompileOptions opts;
        opts.target = FeatureSet::x86_64();
        return compile(m, opts);
    };
    MachineProgram small = build(2);
    MachineProgram big = build(40);
    auto backedge_len = [](const MachineProgram &p) {
        for (const auto &f : p.funcs) {
            for (const auto &blk : f.blocks) {
                const MachineInstr &t = blk.instrs.back();
                if (t.op == Op::Branch &&
                    t.addr > p.funcs[0].blocks[0].instrs[0].addr)
                    return int(t.len);
            }
        }
        return -1;
    };
    EXPECT_LT(backedge_len(small), backedge_len(big));
}

TEST(Isel, AbsoluteAddressingDropsBaseRegisters)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int i = b.constInt(3, Type::PtrInt);
    int v = b.load(b.gep(base, i, 4, 8), Type::I32);
    b.ret(v);
    m.validate();
    CompileOptions opts;
    opts.target = FeatureSet::x86_64();
    MachineProgram prog = compile(m, opts);
    // The load uses [disp + idx*4]; no base register.
    bool found = false;
    for (const auto &f : prog.funcs) {
        for (const auto &blk : f.blocks) {
            for (const auto &ins : blk.instrs) {
                if (ins.op == Op::Load &&
                    ins.form == MemForm::Load) {
                    EXPECT_LT(ins.mem.base, 0);
                    EXPECT_GE(ins.mem.index, 0);
                    EXPECT_GT(ins.mem.disp, 0x1000);
                    found = true;
                }
            }
        }
    }
    EXPECT_TRUE(found);
    runBoth(m, opts.target);
}

TEST(Isel, RmwFoldsOnX86Only)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int addr = b.gep(base, -1, 1, 16);
    int v = b.load(addr, Type::I32);
    int v2 = b.arithImm(IrOp::Add, v, 7, Type::I32);
    b.store(addr, v2, Type::I32);
    int back = b.load(addr, Type::I32);
    b.ret(back);
    m.validate();

    CompileOptions opts;
    opts.target = FeatureSet::x86_64();
    opts.enableLvn = false;
    MachineProgram cisc = compile(m, opts);
    bool has_rmw = false;
    for (const auto &f : cisc.funcs) {
        for (const auto &blk : f.blocks) {
            for (const auto &ins : blk.instrs)
                has_rmw |= ins.form == MemForm::LoadOpStore;
        }
    }
    EXPECT_TRUE(has_rmw);

    opts.target = FeatureSet::parse("microx86-16D-64W-P");
    MachineProgram risc = compile(m, opts);
    for (const auto &f : risc.funcs) {
        for (const auto &blk : f.blocks) {
            for (const auto &ins : blk.instrs)
                EXPECT_NE(ins.form, MemForm::LoadOpStore);
        }
    }
    EXPECT_EQ(runBoth(m, FeatureSet::x86_64()),
              runBoth(m, FeatureSet::parse("microx86-16D-64W-P")));
}

TEST(IfConvert, ConvertsUnpredictableDiamond)
{
    IrModule m = shell();
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int acc = b.constInt(0, Type::I32);
    int i = b.constInt(0, Type::PtrInt);
    int loop = b.newBlock();
    int t = b.newBlock();
    int f = b.newBlock();
    int join = b.newBlock();
    int exit = b.newBlock();
    b.jmp(loop);
    b.setBlock(loop);
    int v = b.load(b.gep(base, i, 4, 0), Type::I32);
    int bit = b.arithImm(IrOp::And, v, 1, Type::I32);
    int c = b.icmpImm(Cond::Ne, bit, 0);
    b.br(c, t, f, 0.5, false);
    b.setBlock(t);
    b.arithInto(acc, IrOp::Add, acc, v, Type::I32);
    b.jmp(join);
    b.setBlock(f);
    b.arithInto(acc, IrOp::Sub, acc, v, Type::I32);
    b.jmp(join);
    b.setBlock(join);
    b.arithImmInto(i, IrOp::Add, i, 1, Type::PtrInt);
    int cc = b.icmpImm(Cond::Lt, i, 64);
    b.br(cc, loop, exit, 0.98, true);
    b.setBlock(exit);
    b.ret(acc);
    m.validate();

    CompileOptions opts;
    opts.target = FeatureSet::parse("x86-32D-64W-F");
    CompileReport rep;
    compile(m, opts, &rep);
    EXPECT_EQ(rep.ifc.diamondsConverted, 1);

    // Identical result with and without predication.
    EXPECT_EQ(runBoth(m, FeatureSet::parse("x86-32D-64W-F")),
              runBoth(m, FeatureSet::parse("x86-32D-64W-P")));
}

} // namespace
} // namespace cisa
