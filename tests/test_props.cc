/**
 * @file
 * Property-based sweeps across the whole (feature set x phase x
 * microarchitecture) space: invariants that must hold for every
 * combination, parameterized with TEST_P. These complement the
 * equivalence suite by checking structural properties of generated
 * code and simulation outputs rather than semantics.
 */

#include <gtest/gtest.h>

#include "core/cisa.hh"

namespace cisa
{
namespace
{

// ---------- code-structure properties per feature set ----------

class CodeProps : public ::testing::TestWithParam<int>
{};

TEST_P(CodeProps, StructuralInvariants)
{
    FeatureSet fs = FeatureSet::byId(GetParam());
    PhaseProfile prof = allPhases()[7]; // bzip2: uses every feature
    prof.targetDynOps = 10000;
    prof.outerTrip = 2;
    IrModule m = buildPhase(prof);
    CompileOptions opts;
    opts.target = fs;
    MachineProgram prog = compile(m, opts);

    uint64_t code_end = 0;
    for (const auto &f : prog.funcs) {
        for (const auto &b : f.blocks) {
            for (const auto &i : b.instrs) {
                // Encoded lengths within the superset limit.
                EXPECT_GE(int(i.len), 1);
                EXPECT_LE(int(i.len), kSupersetMaxLen);
                // Addresses are laid out monotonically.
                EXPECT_GT(i.addr, code_end);
                code_end = i.addr;
                // Micro-op expansion legality.
                EXPECT_GE(int(i.uops), 1);
                if (fs.complexity == Complexity::MicroX86)
                    EXPECT_EQ(int(i.uops), 1) << i.str();
                // Register bounds.
                if (!i.fp) {
                    EXPECT_LT(i.dst, int(fs.regDepth));
                    EXPECT_LT(i.src1, int(fs.regDepth));
                    EXPECT_LT(i.src2, int(fs.regDepth));
                }
                EXPECT_LT(i.mem.base, int(fs.regDepth));
                EXPECT_LT(i.mem.index, int(fs.regDepth));
                // Predication only on fully-predicated targets.
                if (!fs.fullPredication())
                    EXPECT_LT(i.predReg, 0);
                // SIMD only with SSE.
                if (!fs.simd())
                    EXPECT_FALSE(isSimdOp(i.op)) << i.str();
                // 32-bit targets never emit 64-bit integer ops.
                if (fs.width == RegWidth::W32 && !i.fp)
                    EXPECT_EQ(int(i.opBits), 32) << i.str();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllFeatureSets, CodeProps,
    ::testing::Range(0, FeatureSet::count()),
    [](const ::testing::TestParamInfo<int> &info) {
        std::string n = FeatureSet::byId(info.param).name();
        for (auto &ch : n) {
            if (ch == '-')
                ch = '_';
        }
        return n;
    });

// ---------- timing properties per microarchitecture ----------

class UarchProps : public ::testing::TestWithParam<int>
{};

TEST_P(UarchProps, SimulationInvariants)
{
    MicroArchConfig ua = MicroArchConfig::byId(GetParam());
    static const Trace trace = [] {
        PhaseProfile prof = allPhases()[40]; // sjeng: branchy
        prof.targetDynOps = 12000;
        prof.outerTrip = 2;
        IrModule m = buildPhase(prof);
        CompiledRun run = compileAndRun(m, FeatureSet::x86_64());
        return run.trace;
    }();

    CoreConfig cc{FeatureSet::x86_64(), ua};
    PerfResult r = simulateCore(cc, trace, 3000, 800);

    // Throughput bounded by machine width.
    EXPECT_LE(r.upc, double(ua.width) + 0.01) << ua.name();
    EXPECT_GT(r.ipc, 0.01) << ua.name();
    // Conservation: issued uops track dispatched work.
    EXPECT_GE(r.stats.issuedUops, r.stats.uops) << ua.name();
    // Cache accounting.
    EXPECT_GE(r.stats.l1dAccesses, r.stats.l1dMisses);
    EXPECT_GE(r.stats.l1iAccesses, r.stats.l1iMisses);
    // Branch accounting.
    EXPECT_GE(r.stats.bpLookups, r.stats.bpMispredicts);
    if (!ua.uopCache)
        EXPECT_EQ(r.stats.uopCacheLookups, 0u);
    if (!ua.outOfOrder) {
        EXPECT_EQ(r.stats.renamedUops, 0u);
        EXPECT_EQ(r.stats.iqWrites, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(SampledConfigs, UarchProps,
                         ::testing::Values(0, 13, 29, 47, 61, 88,
                                           101, 123, 140, 151, 166,
                                           179));

// ---------- power-model properties over the space ----------

class PowerProps : public ::testing::TestWithParam<int>
{};

TEST_P(PowerProps, AreaAndPowerWithinSpace)
{
    FeatureSet fs = FeatureSet::byId(GetParam());
    for (int u = 0; u < 180; u += 37) {
        CoreConfig cc{fs, MicroArchConfig::byId(u)};
        double a = coreAreaMm2(cc);
        double p = corePeakPowerW(cc);
        EXPECT_GT(a, 8.0) << cc.name();
        EXPECT_LT(a, 30.0) << cc.name();
        EXPECT_GT(p, 4.0) << cc.name();
        EXPECT_LT(p, 24.0) << cc.name();
        // Breakdown groups are non-negative.
        CoreBreakdown b = coreArea(cc);
        EXPECT_GE(b.fetchGroup(), 0.0);
        EXPECT_GE(b.fuGroup(), 0.0);
        EXPECT_GE(b.coreOnly(), 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(AllFeatureSets, PowerProps,
                         ::testing::Range(0, FeatureSet::count()));

} // namespace
} // namespace cisa
