/**
 * @file
 * Tests of the deterministic fault-injection plane
 * (src/common/faultinject.hh): spec parsing (including every
 * rejection path leaving the previous config untouched), seeded
 * determinism of the firing schedule, nth/count/short semantics,
 * errno injection, counter snapshots, and the disarm guarantee that
 * an unarmed plane never fires.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <set>
#include <string>
#include <vector>

#include "common/faultinject.hh"

namespace cisa
{
namespace
{

/** Reset to a clean, disarmed plane around every test. */
class FaultInject : public ::testing::Test
{
  protected:
    void SetUp() override { ASSERT_TRUE(faultConfigure("")); }
    void TearDown() override { ASSERT_TRUE(faultConfigure("")); }
};

/** Fire pattern of @p site over @p n checks, as a bitmap string. */
std::string
firePattern(FaultSite site, int n)
{
    std::string out;
    for (int i = 0; i < n; i++)
        out += faultPoint(site) ? '1' : '0';
    return out;
}

TEST_F(FaultInject, UnarmedIsInertAndCheap)
{
    EXPECT_FALSE(faultArmed());
    EXPECT_FALSE(faultHit(FaultSite::NetWrite));
    EXPECT_FALSE(faultHit(FaultSite::DiskFsync));
    // Never-armed plane exports nothing: stats stay clean.
    EXPECT_TRUE(faultSnapshot().empty());
}

TEST_F(FaultInject, SiteNamesRoundTrip)
{
    std::set<std::string> seen;
    for (int i = 0; i < kFaultSiteCount; i++) {
        std::string name = faultSiteName(FaultSite(i));
        EXPECT_FALSE(name.empty());
        // Every site is individually configurable by its name.
        EXPECT_TRUE(faultConfigure(name + ":p=1"))
            << "site " << name;
        EXPECT_TRUE(seen.insert(name).second)
            << "duplicate site name " << name;
    }
    ASSERT_TRUE(faultConfigure(""));
}

TEST_F(FaultInject, NthFiresExactlyEveryNth)
{
    ASSERT_TRUE(faultConfigure("net.read:nth=3"));
    EXPECT_TRUE(faultArmed());
    EXPECT_EQ(firePattern(FaultSite::NetRead, 9), "001001001");
    // Other sites are untouched.
    EXPECT_FALSE(faultPoint(FaultSite::NetWrite));
}

TEST_F(FaultInject, CountCapsTotalFires)
{
    ASSERT_TRUE(faultConfigure("net.write:nth=1,count=2"));
    EXPECT_EQ(firePattern(FaultSite::NetWrite, 5), "11000");
}

TEST_F(FaultInject, ProbabilisticScheduleIsSeedDeterministic)
{
    ASSERT_TRUE(faultConfigure("net.read:p=0.3", 42));
    std::string first = firePattern(FaultSite::NetRead, 200);
    // Same spec + seed: identical schedule, not just statistics.
    ASSERT_TRUE(faultConfigure("net.read:p=0.3", 42));
    EXPECT_EQ(firePattern(FaultSite::NetRead, 200), first);
    // Different seed: (overwhelmingly) different schedule.
    ASSERT_TRUE(faultConfigure("net.read:p=0.3", 43));
    EXPECT_NE(firePattern(FaultSite::NetRead, 200), first);
    // p=0.3 over 200 draws lands well inside [20, 120] fires.
    int fires = 0;
    for (char c : first)
        fires += c == '1';
    EXPECT_GT(fires, 20);
    EXPECT_LT(fires, 120);
}

TEST_F(FaultInject, SitesDrawIndependentStreams)
{
    ASSERT_TRUE(
        faultConfigure("net.read:p=0.5;net.write:p=0.5", 7));
    std::string a = firePattern(FaultSite::NetRead, 100);
    // Re-seed and interleave checks of the second site: the first
    // site's schedule must not shift (per-site streams).
    ASSERT_TRUE(
        faultConfigure("net.read:p=0.5;net.write:p=0.5", 7));
    std::string b;
    for (int i = 0; i < 100; i++) {
        faultPoint(FaultSite::NetWrite);
        b += faultPoint(FaultSite::NetRead) ? '1' : '0';
    }
    EXPECT_EQ(b, a);
}

TEST_F(FaultInject, FiringSetsInjectedErrno)
{
    ASSERT_TRUE(faultConfigure("net.write:nth=1"));
    errno = 0;
    ASSERT_TRUE(faultPoint(FaultSite::NetWrite));
    EXPECT_EQ(errno, EPIPE); // the site default

    ASSERT_TRUE(faultConfigure("net.write:nth=1,errno=ENOSPC"));
    errno = 0;
    ASSERT_TRUE(faultPoint(FaultSite::NetWrite));
    EXPECT_EQ(errno, ENOSPC);

    ASSERT_TRUE(faultConfigure("net.write:nth=1,errno=11"));
    errno = 0;
    ASSERT_TRUE(faultPoint(FaultSite::NetWrite));
    EXPECT_EQ(errno, 11);
}

TEST_F(FaultInject, DefaultErrnosAreSane)
{
    EXPECT_EQ(faultSiteErrno(FaultSite::NetRead), ECONNRESET);
    EXPECT_EQ(faultSiteErrno(FaultSite::NetWrite), EPIPE);
    EXPECT_EQ(faultSiteErrno(FaultSite::NetConnect), ECONNREFUSED);
    EXPECT_EQ(faultSiteErrno(FaultSite::NetAccept), ECONNABORTED);
    EXPECT_EQ(faultSiteErrno(FaultSite::DiskWrite), ENOSPC);
    EXPECT_EQ(faultSiteErrno(FaultSite::DiskFsync), EIO);
}

TEST_F(FaultInject, ShortBytesDefaultsToHalfAndHonorsOverride)
{
    ASSERT_TRUE(faultConfigure("disk.write:nth=1"));
    EXPECT_EQ(faultShortBytes(100), 50u);
    ASSERT_TRUE(faultConfigure("disk.write:nth=1,short=7"));
    EXPECT_EQ(faultShortBytes(100), 7u);
    // A short= beyond the buffer can't "un-tear" the write.
    EXPECT_EQ(faultShortBytes(4), 4u);
}

TEST_F(FaultInject, SnapshotCountsChecksAndFires)
{
    ASSERT_TRUE(faultConfigure("net.read:nth=2"));
    for (int i = 0; i < 10; i++)
        faultPoint(FaultSite::NetRead);
    auto snaps = faultSnapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].site, "net.read");
    EXPECT_EQ(snaps[0].checks, 10u);
    EXPECT_EQ(snaps[0].fired, 5u);
    // Reconfigure resets the counters.
    ASSERT_TRUE(faultConfigure("net.read:nth=2"));
    snaps = faultSnapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].checks, 0u);
}

TEST_F(FaultInject, MalformedSpecsRejectedConfigUntouched)
{
    ASSERT_TRUE(faultConfigure("net.read:nth=1"));
    const char *bad[] = {
        "bogus.site:p=1",   // unknown site
        "net.read",         // no clauses
        "net.read:p=1.5",   // p out of range
        "net.read:p=-0.1",  //
        "net.read:nth=0",   // nth must be >= 1
        "net.read:wat=1",   // unknown key
        "net.read:errno=EMADEUP", // unknown errno name
        "net.read:p",       // no value
    };
    for (const char *spec : bad) {
        std::string err;
        EXPECT_FALSE(faultConfigure(spec, 1, &err))
            << "accepted: " << spec;
        EXPECT_FALSE(err.empty()) << spec;
        // The previous (firing) config must still be in force.
        EXPECT_TRUE(faultArmed()) << spec;
        EXPECT_TRUE(faultPoint(FaultSite::NetRead)) << spec;
    }
}

TEST_F(FaultInject, DisarmStopsFiringImmediately)
{
    ASSERT_TRUE(faultConfigure("net.read:nth=1"));
    EXPECT_TRUE(faultPoint(FaultSite::NetRead));
    ASSERT_TRUE(faultConfigure(""));
    EXPECT_FALSE(faultArmed());
    EXPECT_FALSE(faultHit(FaultSite::NetRead));
    // Empty clauses are tolerated, and a clause-free spec disarms.
    ASSERT_TRUE(faultConfigure(";;"));
    EXPECT_FALSE(faultArmed());
}

TEST_F(FaultInject, DelaySiteFiresWithoutFailing)
{
    // exec.delay's "fault" is the sleep; ms=0 keeps the test fast.
    ASSERT_TRUE(faultConfigure("exec.delay:nth=1,ms=0"));
    EXPECT_TRUE(faultPoint(FaultSite::ExecDelay));
    auto snaps = faultSnapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_EQ(snaps[0].site, "exec.delay");
    EXPECT_EQ(snaps[0].fired, 1u);
}

} // namespace
} // namespace cisa
