/**
 * @file
 * Tests of the McPAT-style power/area model: the paper's per-core
 * ranges and feature deltas, monotonicity in structure sizes, and
 * activity-based energy behaviour.
 */

#include <gtest/gtest.h>

#include "power/energy.hh"
#include "power/power.hh"

namespace cisa
{
namespace
{

CoreConfig
cfgOf(const char *fs, int uarch_id)
{
    return {FeatureSet::parse(fs), MicroArchConfig::byId(uarch_id)};
}

TEST(Power, PaperRanges)
{
    double amin = 1e18, amax = 0, pmin = 1e18, pmax = 0;
    for (const auto &ua : MicroArchConfig::enumerate()) {
        for (const auto &fs : FeatureSet::enumerate()) {
            CoreConfig cc{fs, ua};
            double a = coreAreaMm2(cc);
            double p = corePeakPowerW(cc);
            amin = std::min(amin, a);
            amax = std::max(amax, a);
            pmin = std::min(pmin, p);
            pmax = std::max(pmax, p);
        }
    }
    // Paper: 4.8-23.4 W and 9.4-28.6 mm^2.
    EXPECT_NEAR(pmin, 4.8, 2.0);
    EXPECT_NEAR(pmax, 23.4, 4.0);
    EXPECT_NEAR(amin, 9.4, 1.5);
    EXPECT_NEAR(amax, 28.6, 4.5);
}

TEST(Power, SimdDelta)
{
    // Paper: dropping SIMD saves ~7.4% peak power, ~17.3% area.
    int u = 170;
    double ax = coreAreaMm2(cfgOf("x86-32D-64W-P", u));
    double am = coreAreaMm2(cfgOf("microx86-32D-64W-P", u));
    double px = corePeakPowerW(cfgOf("x86-32D-64W-P", u));
    double pm = corePeakPowerW(cfgOf("microx86-32D-64W-P", u));
    EXPECT_NEAR((am / ax - 1.0) * 100.0, -17.3, 8.0);
    EXPECT_NEAR((pm / px - 1.0) * 100.0, -7.4, 4.0);
}

TEST(Power, WidthDelta)
{
    // Paper: 64-bit registers cost up to ~6.4% peak power.
    int u = 170;
    double p64 = corePeakPowerW(cfgOf("x86-32D-64W-P", u));
    double p32 = corePeakPowerW(cfgOf("x86-32D-32W-P", u));
    EXPECT_NEAR((p64 / p32 - 1.0) * 100.0, 6.4, 3.5);
}

TEST(Power, DepthScalesBackend)
{
    int u = 170;
    double a8 = coreAreaMm2(cfgOf("x86-16D-64W-P", u));
    double a64 = coreAreaMm2(cfgOf("x86-64D-64W-P", u));
    EXPECT_GT(a64, a8);
    // The effect is partial (renamed PRF dominates).
    EXPECT_LT(a64 / a8, 1.10);
}

TEST(Power, MonotoneInStructures)
{
    // Bigger caches, wider machines, more ALUs cost more.
    MicroArchConfig small = MicroArchConfig::byId(0);
    FeatureSet fs = FeatureSet::x86_64();
    MicroArchConfig big = small;
    big.l1dKB *= 2;
    EXPECT_GT(coreAreaMm2({fs, big}), coreAreaMm2({fs, small}));
    big = small;
    big.intAlus += 2;
    EXPECT_GT(corePeakPowerW({fs, big}),
              corePeakPowerW({fs, small}));
    big = small;
    big.l2KB *= 2;
    EXPECT_GT(coreAreaMm2({fs, big}), coreAreaMm2({fs, small}));
}

TEST(Power, InOrderSkipsWindows)
{
    const auto &all = MicroArchConfig::enumerate();
    MicroArchConfig io, ooo;
    bool got_io = false, got_ooo = false;
    for (const auto &c : all) {
        if (!c.outOfOrder && c.width == 2 && !got_io) {
            io = c;
            got_io = true;
        }
        if (c.outOfOrder && c.width == 2 && c.iqSize == 64 &&
            !got_ooo) {
            ooo = c;
            got_ooo = true;
        }
    }
    ASSERT_TRUE(got_io && got_ooo);
    FeatureSet fs = FeatureSet::x86_64();
    CoreBreakdown a_io = coreArea({fs, io});
    CoreBreakdown a_ooo = coreArea({fs, ooo});
    EXPECT_EQ(a_io.rename, 0.0);
    EXPECT_EQ(a_io.iq, 0.0);
    EXPECT_GT(a_ooo.schedulerGroup(), a_io.schedulerGroup());
}

TEST(Power, BreakdownSumsToTotal)
{
    CoreBreakdown b = coreArea(cfgOf("x86-64D-64W-F", 179));
    double sum = b.l1i + b.bpred + b.ild + b.uopCache + b.decode +
                 b.rename + b.iq + b.rob + b.regfile + b.intFu +
                 b.fpFu + b.simdFu + b.lsq + b.l1d + b.l2 +
                 b.overhead;
    EXPECT_NEAR(b.total(), sum, 1e-9);
    EXPECT_GT(b.coreOnly(), 0.0);
    EXPECT_LT(b.coreOnly(), b.total());
}

TEST(Energy, ScalesWithActivity)
{
    CoreConfig cc = cfgOf("x86-16D-64W-P", 170);
    PerfStats st;
    st.cycles = 10000;
    st.l1dAccesses = 1000;
    st.issuedUops = 5000;
    st.aluOps[size_t(MicroClass::IntAlu)] = 5000;
    st.regReads = 8000;
    st.regWrites = 4000;
    EnergyBreakdown e1 = coreEnergy(cc, st);
    PerfStats st2 = st;
    st2.l1dAccesses *= 2;
    st2.issuedUops *= 2;
    st2.aluOps[size_t(MicroClass::IntAlu)] *= 2;
    EnergyBreakdown e2 = coreEnergy(cc, st2);
    EXPECT_GT(e2.fu, e1.fu * 1.9);
    EXPECT_GT(e2.lsq, e1.lsq * 1.9);
    // Leakage unchanged (same cycles).
    EXPECT_NEAR(e2.leakage, e1.leakage, 1e-15);
}

TEST(Energy, LeakageScalesWithTime)
{
    CoreConfig cc = cfgOf("x86-16D-64W-P", 170);
    PerfStats st;
    st.cycles = 10000;
    PerfStats st2;
    st2.cycles = 20000;
    EXPECT_NEAR(coreEnergy(cc, st2).leakage,
                2.0 * coreEnergy(cc, st).leakage, 1e-15);
}

TEST(Energy, MemAccessesDominatelsq)
{
    CoreConfig cc = cfgOf("x86-16D-64W-P", 170);
    PerfStats st;
    st.cycles = 1000;
    st.memAccesses = 1000;
    PerfStats st2;
    st2.cycles = 1000;
    st2.l1dAccesses = 1000;
    EXPECT_GT(coreEnergy(cc, st).lsq,
              coreEnergy(cc, st2).lsq * 10.0);
}

TEST(Energy, VendorFixedLengthSavesIld)
{
    VendorModel alpha = VendorModel::vendor(VendorIsa::AlphaLike);
    CoreConfig cc{alpha.features, MicroArchConfig::byId(170)};
    PerfStats st;
    st.cycles = 100000;
    st.ildInstrs = 100000;
    double with_ild = coreEnergy(cc, st).fetch;
    double without = coreEnergy(cc, st, &alpha).fetch;
    EXPECT_LT(without, with_ild);
}

} // namespace
} // namespace cisa
