/**
 * @file
 * Tests of the 4-core phase-boundary scheduler's exhaustive
 * assignment step and its objective semantics. The solver is
 * cross-checked against an independent brute-force enumerator over
 * all injective app-to-core maps — including the deterministic
 * tie-break — on random matrices and on value matrices built from a
 * real (budget-reduced) campaign slab under the MpEdp semantics.
 */

#include <cstdio>
#include <cstdlib>

// Must run before any Campaign::get() in this process.
namespace
{
struct EnvSetup
{
    EnvSetup()
    {
        setenv("CISA_SIM_UOPS", "1500", 1);
        setenv("CISA_SIM_WARMUP", "400", 1);
        setenv("CISA_DSE_CACHE", "/tmp/cisa_sched_test_cache.bin",
               1);
        std::remove("/tmp/cisa_sched_test_cache.bin");
        std::remove("/tmp/cisa_sched_test_cache.bin.corrupt");
    }
} env_setup;
} // namespace

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <vector>

#include "common/rng.hh"
#include "explore/schedule.hh"
#include "workloads/profiles.hh"

namespace cisa
{
namespace
{

/**
 * Independent reference solver: enumerate ordered injective
 * k-tuples of cores in lexicographic order, keep the first strict
 * maximum. next_permutation order groups permutations by prefix, so
 * this must agree with bestAssignment() bit for bit, ties included.
 */
std::array<int, 4>
bruteForce(const double val[4][4], const std::vector<int> &active)
{
    size_t k = active.size();
    std::array<int, 4> tuple{};
    std::array<int, 4> best{-1, -1, -1, -1};
    double best_score = -1e300;
    std::function<void(size_t, uint32_t, double)> rec =
        [&](size_t depth, uint32_t used, double score) {
            if (depth == k) {
                if (score > best_score) {
                    best_score = score;
                    best = {-1, -1, -1, -1};
                    for (size_t i = 0; i < k; i++)
                        best[size_t(active[i])] = tuple[size_t(i)];
                }
                return;
            }
            for (int c = 0; c < 4; c++) {
                if (used & (1u << c))
                    continue;
                tuple[depth] = c;
                rec(depth + 1, used | (1u << c),
                    score + val[depth][c]);
            }
        };
    rec(0, 0, 0.0);
    return best;
}

TEST(BestAssignment, MatchesBruteForceOnRandomMatrices)
{
    Pcg32 rng(42, 7);
    for (int iter = 0; iter < 300; iter++) {
        double val[4][4];
        // Every third matrix draws from {0, 1, 2, 3} so ties are
        // common and the tie-break path is really exercised.
        bool coarse = iter % 3 == 0;
        for (int a = 0; a < 4; a++) {
            for (int c = 0; c < 4; c++) {
                val[a][c] =
                    coarse ? double(rng.below(4))
                           : double(rng.below(1u << 20)) * 0x1p-20;
            }
        }
        // Active sets of every size, cycling through subsets.
        std::vector<int> active;
        uint32_t mask = 1 + uint32_t(iter) % 15;
        for (int a = 0; a < 4; a++) {
            if (mask & (1u << a))
                active.push_back(a);
        }
        std::array<int, 4> got = bestAssignment(val, active);
        std::array<int, 4> want = bruteForce(val, active);
        EXPECT_EQ(got, want) << "iter " << iter;
    }
}

TEST(BestAssignment, AllTiesResolveToIdentityPrefix)
{
    double val[4][4];
    for (int a = 0; a < 4; a++)
        for (int c = 0; c < 4; c++)
            val[a][c] = 1.0;
    std::array<int, 4> got = bestAssignment(val, {1, 3});
    // First permutation (0,1,2,3): row 0 -> core 0, row 1 -> core 1.
    EXPECT_EQ(got, (std::array<int, 4>{-1, 0, -1, 1}));
}

TEST(BestAssignment, PicksObviousDiagonal)
{
    double val[4][4] = {};
    val[0][2] = 10;
    val[1][0] = 10;
    val[2][3] = 10;
    val[3][1] = 10;
    std::array<int, 4> got = bestAssignment(val, {0, 1, 2, 3});
    EXPECT_EQ(got, (std::array<int, 4>{2, 0, 3, 1}));
}

/** Mid-range OoO microarchitecture id used by the fixed design. */
int
midUarch(int salt)
{
    return (100 + salt * 17) % DesignPoint::kUarchCount;
}

/** Four x86-64 cores on different microarchitectures: one slab. */
MulticoreDesign
fixedDesign()
{
    MulticoreDesign d;
    for (int c = 0; c < 4; c++) {
        d.cores[size_t(c)] = DesignPoint::composite(
            FeatureSet::x86_64().id(), midUarch(c));
    }
    return d;
}

TEST(BestAssignment, MatchesBruteForceOnSlabValuesMpEdp)
{
    MulticoreDesign d = fixedDesign();
    Campaign &camp = Campaign::get();
    // val built exactly the way runMultiprog builds it for MpEdp:
    // contended numbers, scored as ref / (t * e), at each app's
    // first phase.
    std::vector<int> active = {0, 1, 2, 3};
    double val[4][4];
    for (int k = 0; k < 4; k++) {
        int gp = phaseStartIndex(k);
        for (int c = 0; c < 4; c++) {
            const PhasePerf &pp = camp.at(d.cores[size_t(c)], gp);
            val[k][c] = 1.0 / (double(pp.timePerRunMp) *
                               double(pp.energyPerRunMp));
        }
    }
    EXPECT_EQ(bestAssignment(val, active), bruteForce(val, active));
}

TEST(Schedule, MpEdpOutcomeIsConsistent)
{
    MulticoreDesign d = fixedDesign();
    std::array<int, 4> apps = {0, 1, 2, 3};
    MpOutcome edp = runMultiprog(d, apps, Objective::MpEdp);
    EXPECT_GT(edp.makespan, 0.0);
    EXPECT_GT(edp.energy, 0.0);
    EXPECT_GT(edp.throughput, 0.0);
    EXPECT_DOUBLE_EQ(edp.edp, edp.energy * edp.makespan);

    // Same workload, same design, throughput objective: a different
    // generalized assignment, but the same amount of program work.
    MpOutcome thr = runMultiprog(d, apps, Objective::MpThroughput);
    EXPECT_GT(thr.throughput, 0.0);
    EXPECT_DOUBLE_EQ(thr.edp, thr.energy * thr.makespan);
}

TEST(Schedule, StEdpNeverBeatsStPerfOnTime)
{
    MulticoreDesign d = fixedDesign();
    for (int b = 0; b < int(specSuite().size()); b++) {
        StOutcome perf = runSingleThread(d, b, Objective::StPerf);
        StOutcome edp = runSingleThread(d, b, Objective::StEdp);
        EXPECT_GT(perf.time, 0.0);
        EXPECT_GT(edp.energy, 0.0);
        EXPECT_DOUBLE_EQ(edp.edp, edp.energy * edp.time);
        // StPerf picks the per-phase time minimum, so no other
        // per-phase policy can finish sooner.
        EXPECT_LE(perf.time, edp.time * (1 + 1e-12));
    }
}

TEST(Schedule, PhaseRunCountMatchesProfileWeights)
{
    for (int b = 0; b < int(specSuite().size()); b++) {
        const auto &phs = specSuite()[size_t(b)].phases;
        for (int p = 0; p < int(phs.size()); p++) {
            double want = phs[size_t(p)].weight * kRunsPerWeight *
                          double(phs.size());
            EXPECT_DOUBLE_EQ(phaseRunCount(b, p), want);
            EXPECT_GT(phaseRunCount(b, p), 0.0);
        }
    }
}

} // namespace
} // namespace cisa
