/**
 * @file
 * Unit tests for the superset ISA feature model: viability rules,
 * the 26-set enumeration, subsumption (upgrade/downgrade), naming,
 * registers, micro-op expansion rules, and vendor models.
 */

#include <gtest/gtest.h>

#include "isa/features.hh"
#include "isa/opcodes.hh"
#include "isa/registers.hh"
#include "isa/vendor.hh"

namespace cisa
{
namespace
{

TEST(Features, ExactlyTwentySix)
{
    EXPECT_EQ(FeatureSet::count(), 26);
}

TEST(Features, ViabilityRules)
{
    // 64-bit requires depth >= 16.
    FeatureSet f{Complexity::X86, 8, RegWidth::W64,
                 Predication::Partial};
    EXPECT_FALSE(f.isViable());
    // Full predication with 8 registers is excluded.
    f = {Complexity::X86, 8, RegWidth::W32, Predication::Full};
    EXPECT_FALSE(f.isViable());
    f = {Complexity::X86, 8, RegWidth::W32, Predication::Partial};
    EXPECT_TRUE(f.isViable());
    // Bad depth.
    f = {Complexity::X86, 24, RegWidth::W32, Predication::Partial};
    EXPECT_FALSE(f.isViable());
}

TEST(Features, IdRoundTrip)
{
    for (int i = 0; i < FeatureSet::count(); i++) {
        FeatureSet f = FeatureSet::byId(i);
        EXPECT_EQ(f.id(), i);
        EXPECT_TRUE(f.isViable());
        EXPECT_EQ(FeatureSet::parse(f.name()), f);
    }
}

TEST(Features, SimdTiedToComplexity)
{
    for (const auto &f : FeatureSet::enumerate())
        EXPECT_EQ(f.simd(), f.complexity == Complexity::X86);
}

TEST(Features, SupersetSubsumesEverything)
{
    FeatureSet sup = FeatureSet::superset();
    for (const auto &f : FeatureSet::enumerate())
        EXPECT_TRUE(sup.subsumes(f)) << f.name();
}

TEST(Features, MinimalSubsumedByEverything64)
{
    FeatureSet min = FeatureSet::minimal();
    for (const auto &f : FeatureSet::enumerate()) {
        if (f.regDepth >= 8 && f.width == RegWidth::W64 &&
            f.complexity == Complexity::X86) {
            EXPECT_TRUE(f.subsumes(min)) << f.name();
        }
    }
}

TEST(Features, SubsumptionIsDirectional)
{
    FeatureSet big = FeatureSet::parse("x86-64D-64W-F");
    FeatureSet small = FeatureSet::parse("microx86-16D-32W-P");
    EXPECT_TRUE(big.subsumes(small));
    EXPECT_FALSE(small.subsumes(big));
    // microx86 cannot run full-x86 code.
    FeatureSet ux = FeatureSet::parse("microx86-64D-64W-F");
    FeatureSet x = FeatureSet::parse("x86-16D-32W-P");
    EXPECT_FALSE(ux.subsumes(x));
}

TEST(Features, NamesAreCanonical)
{
    EXPECT_EQ(FeatureSet::x86_64().name(), "x86-16D-64W-P");
    EXPECT_EQ(FeatureSet::thumbLike().name(), "microx86-8D-32W-P");
    EXPECT_EQ(FeatureSet::alphaLike().name(), "microx86-32D-64W-P");
    EXPECT_EQ(FeatureSet::superset().name(), "x86-64D-64W-F");
}

TEST(Features, DistinctFeatureCount)
{
    // The full enumeration exercises all 12 feature options.
    EXPECT_EQ(distinctFeatureCount(FeatureSet::enumerate()), 12);
    // A single set exercises exactly 5 (one per axis).
    EXPECT_EQ(distinctFeatureCount({FeatureSet::x86_64()}), 5);
}

TEST(Registers, Tiers)
{
    EXPECT_EQ(regTier(0), RegTier::Legacy);
    EXPECT_EQ(regTier(7), RegTier::Legacy);
    EXPECT_EQ(regTier(8), RegTier::Rex);
    EXPECT_EQ(regTier(15), RegTier::Rex);
    EXPECT_EQ(regTier(16), RegTier::Rexbc);
    EXPECT_EQ(regTier(63), RegTier::Rexbc);
    EXPECT_EQ(regPrefixBytes(3), 0);
    EXPECT_EQ(regPrefixBytes(9), 1);
    EXPECT_EQ(regPrefixBytes(40), 2);
}

TEST(Registers, Names)
{
    EXPECT_EQ(regName(0, 64), "rax");
    EXPECT_EQ(regName(0, 32), "eax");
    EXPECT_EQ(regName(4, 64), "rsp");
    EXPECT_EQ(regName(12, 64), "r12");
    EXPECT_EQ(regName(12, 32), "r12d");
    EXPECT_EQ(regName(47, 16), "r47w");
    EXPECT_EQ(xmmName(3), "xmm3");
}

TEST(Opcodes, Microx86LegalityIsOneToOne)
{
    for (int o = 0; o < int(Op::NumOps); o++) {
        Op op = Op(o);
        for (int fm = 0; fm < 5; fm++) {
            MemForm f = MemForm(fm);
            if (microx86Legal(op, f))
                EXPECT_EQ(uopExpansion(op, f), 1)
                    << opName(op) << " form " << fm;
        }
    }
}

TEST(Opcodes, ComplexFormsExpand)
{
    EXPECT_EQ(uopExpansion(Op::Add, MemForm::LoadOp), 2);
    EXPECT_EQ(uopExpansion(Op::Add, MemForm::LoadOpStore), 4);
    EXPECT_EQ(uopExpansion(Op::VMul, MemForm::None), 2);
    EXPECT_EQ(uopExpansion(Op::Load, MemForm::Load), 1);
}

TEST(Opcodes, SimdNeverMicrox86)
{
    EXPECT_FALSE(microx86Legal(Op::VAdd, MemForm::None));
    EXPECT_FALSE(microx86Legal(Op::VMul, MemForm::Load));
}

TEST(Opcodes, ClassesAndLatencies)
{
    EXPECT_EQ(opClass(Op::Mul), MicroClass::IntMul);
    EXPECT_EQ(opClass(Op::FDiv), MicroClass::FpDiv);
    EXPECT_EQ(opClass(Op::Branch), MicroClass::Branch);
    EXPECT_GE(microLatency(MicroClass::IntDiv),
              microLatency(MicroClass::IntMul));
    EXPECT_TRUE(isIntClass(MicroClass::IntAlu));
    EXPECT_TRUE(isFpSimdClass(MicroClass::SimdMul));
    EXPECT_FALSE(isFpSimdClass(MicroClass::Load));
}

TEST(Vendor, TableTwoMapping)
{
    auto palette = VendorModel::multiVendorPalette();
    ASSERT_EQ(palette.size(), 3u);
    EXPECT_EQ(palette[0].features, FeatureSet::x86_64());
    EXPECT_EQ(palette[1].features, FeatureSet::alphaLike());
    EXPECT_EQ(palette[2].features, FeatureSet::thumbLike());
    EXPECT_FALSE(palette[0].fixedLength);
    EXPECT_TRUE(palette[1].fixedLength);
    EXPECT_TRUE(palette[2].fixedLength);
    EXPECT_LT(palette[2].codeSizeFactor, 1.0); // Thumb compression
    EXPECT_GT(palette[1].fpArchRegs, 16);      // Alpha FP registers
    for (const auto &v : palette)
        EXPECT_TRUE(v.crossIsaMigration);
}

TEST(Vendor, X86izedPaletteHasNoExclusives)
{
    auto palette = VendorModel::x86izedPalette();
    ASSERT_EQ(palette.size(), 3u);
    for (const auto &v : palette) {
        EXPECT_FALSE(v.crossIsaMigration);
        EXPECT_FALSE(v.fixedLength);
        EXPECT_EQ(v.codeSizeFactor, 1.0);
    }
}

} // namespace
} // namespace cisa
