/**
 * @file
 * Unit tests for the IR core: builder/validation, the interpreter's
 * semantics, memory image initialization, and the CFG analyses
 * (dominators, loops, liveness).
 */

#include <gtest/gtest.h>

#include "compiler/analysis.hh"
#include "compiler/interp.hh"
#include "compiler/ir.hh"

namespace cisa
{
namespace
{

/** sum = 0; for (i = 0; i < 10; i++) sum += i; ret sum. */
IrModule
countingLoop()
{
    IrModule m;
    m.name = "count";
    IrBuilder b(m);
    b.startFunc("main");
    int sum = b.constInt(0, Type::I64);
    int i = b.constInt(0, Type::I64);
    int loop = b.newBlock();
    int exit = b.newBlock();
    b.jmp(loop);
    b.setBlock(loop);
    b.arithInto(sum, IrOp::Add, sum, i, Type::I64);
    b.arithImmInto(i, IrOp::Add, i, 1, Type::I64);
    int c = b.icmpImm(Cond::Lt, i, 10);
    b.br(c, loop, exit, 0.9, true);
    b.setBlock(exit);
    b.ret(sum);
    m.validate();
    return m;
}

TEST(IrInterp, CountingLoop)
{
    IrModule m = countingLoop();
    MemImage img = MemImage::build(m, 64);
    ExecResult r = interpret(m, img);
    EXPECT_EQ(r.retVal, 45);
    EXPECT_FALSE(r.ranOut);
    EXPECT_EQ(r.branches, 12u); // jmp + 10 loop branches + ret
}

TEST(IrInterp, FuelLimit)
{
    IrModule m = countingLoop();
    MemImage img = MemImage::build(m, 64);
    ExecResult r = interpret(m, img, 5);
    EXPECT_TRUE(r.ranOut);
    EXPECT_EQ(r.dynInstrs, 5u);
}

TEST(IrInterp, MemoryRoundTrip)
{
    IrModule m;
    m.name = "mem";
    MemRegion reg;
    reg.name = "a";
    reg.elem = ElemKind::I32;
    reg.count = 64;
    reg.init = RegionInit::Zero;
    m.regions.push_back(reg);
    IrBuilder b(m);
    b.startFunc("main");
    int base = b.baseAddr(0);
    int v = b.constInt(1234, Type::I32);
    int addr = b.gep(base, -1, 1, 8);
    b.store(addr, v, Type::I32);
    int back = b.load(addr, Type::I32);
    b.ret(back);
    m.validate();
    MemImage img = MemImage::build(m, 64);
    ExecResult r = interpret(m, img);
    EXPECT_EQ(r.retVal, 1234);
    EXPECT_EQ(r.loads, 1u);
    EXPECT_EQ(r.stores, 1u);
    EXPECT_NE(r.intChecksum, 0u);
}

TEST(IrInterp, SelectAndPredication)
{
    IrModule m;
    m.name = "sel";
    IrBuilder b(m);
    b.startFunc("main");
    int a = b.constInt(5, Type::I64);
    int c = b.icmpImm(Cond::Gt, a, 3);
    int x = b.constInt(10, Type::I64);
    int y = b.constInt(20, Type::I64);
    int s = b.select(c, x, y, Type::I64);
    // Predicated add: only applies when c != 0.
    IrInstr pi;
    pi.op = IrOp::Add;
    pi.type = Type::I64;
    pi.dst = s;
    pi.a = s;
    pi.imm = 100;
    pi.predVreg = c;
    pi.predSense = false; // false sense: should be skipped
    b.emit(pi);
    b.ret(s);
    m.validate();
    MemImage img = MemImage::build(m, 64);
    EXPECT_EQ(interpret(m, img).retVal, 10);
}

TEST(IrInterp, I32Semantics)
{
    IrModule m;
    m.name = "i32";
    IrBuilder b(m);
    b.startFunc("main");
    int a = b.constInt(0x7fffffff, Type::I32);
    int r1 = b.arithImm(IrOp::Add, a, 1, Type::I32); // overflow
    int r2 = b.arithImm(IrOp::Shr, r1, 1, Type::I32);
    b.ret(r2);
    m.validate();
    MemImage img = MemImage::build(m, 64);
    // 0x80000000 (as -2^31) logically shifted right by 1 at 32 bits
    // = 0x40000000.
    EXPECT_EQ(interpret(m, img).retVal, 0x40000000);
}

TEST(IrInterp, PointerWidthAffectsLayout)
{
    IrModule m;
    m.name = "ptr";
    MemRegion reg;
    reg.name = "p";
    reg.elem = ElemKind::Ptr;
    reg.count = 4096;
    reg.init = RegionInit::PermutePtr;
    reg.seed = 3;
    m.regions.push_back(reg);
    MemImage i64 = MemImage::build(m, 64);
    MemImage i32 = MemImage::build(m, 32);
    // Pointer arrays shrink on 32-bit targets.
    EXPECT_EQ(m.regions[0].sizeBytes(64), 4096u * 8);
    EXPECT_EQ(m.regions[0].sizeBytes(32), 4096u * 4);
    EXPECT_GT(i64.dataBytes(), i32.dataBytes());
}

TEST(IrInterp, PermutePtrIsFullCycle)
{
    IrModule m;
    m.name = "cycle";
    MemRegion reg;
    reg.name = "p";
    reg.elem = ElemKind::Ptr;
    reg.count = 64;
    reg.init = RegionInit::PermutePtr;
    reg.seed = 9;
    m.regions.push_back(reg);
    MemImage img = MemImage::build(m, 64);
    uint64_t p = img.regionBase[0];
    int steps = 0;
    do {
        p = img.load(p, 8);
        steps++;
        ASSERT_LE(steps, 64);
    } while (p != img.regionBase[0]);
    EXPECT_EQ(steps, 64); // Sattolo: a single 64-cycle
}

TEST(Analysis, CfgAndRpo)
{
    IrModule m = countingLoop();
    Cfg cfg = Cfg::build(m.funcs[0]);
    ASSERT_EQ(cfg.succs.size(), 3u);
    EXPECT_EQ(cfg.succs[0].size(), 1u);
    EXPECT_EQ(cfg.succs[1].size(), 2u);
    EXPECT_EQ(cfg.preds[1].size(), 2u); // entry + backedge
    EXPECT_EQ(cfg.rpo.front(), 0);
}

TEST(Analysis, Dominators)
{
    IrModule m = countingLoop();
    Cfg cfg = Cfg::build(m.funcs[0]);
    DomTree dom = DomTree::build(m.funcs[0], cfg);
    EXPECT_TRUE(dom.dominates(0, 1));
    EXPECT_TRUE(dom.dominates(0, 2));
    EXPECT_TRUE(dom.dominates(1, 2));
    EXPECT_FALSE(dom.dominates(2, 1));
}

TEST(Analysis, Loops)
{
    IrModule m = countingLoop();
    Cfg cfg = Cfg::build(m.funcs[0]);
    DomTree dom = DomTree::build(m.funcs[0], cfg);
    LoopInfo li = LoopInfo::build(m.funcs[0], cfg, dom);
    ASSERT_EQ(li.loops.size(), 1u);
    EXPECT_EQ(li.loops[0].header, 1);
    EXPECT_EQ(li.loopDepth[1], 1);
    EXPECT_EQ(li.loopDepth[0], 0);
}

TEST(Analysis, Liveness)
{
    IrModule m = countingLoop();
    Cfg cfg = Cfg::build(m.funcs[0]);
    Liveness lv = Liveness::build(m.funcs[0], cfg);
    // sum (vreg 0) is live into the loop and into the exit.
    EXPECT_TRUE(lv.isLiveIn(1, 0));
    EXPECT_TRUE(lv.isLiveIn(2, 0));
    // The compare temp is not live into the exit block... it is used
    // only by the branch.
    EXPECT_GE(lv.maxPressure(m.funcs[0], 1), 2);
}

TEST(Ir, PrintDoesNotCrash)
{
    IrModule m = countingLoop();
    EXPECT_FALSE(m.print().empty());
}

TEST(Ir, TypeBytes)
{
    EXPECT_EQ(typeBytes(Type::I32, 64), 4);
    EXPECT_EQ(typeBytes(Type::PtrInt, 64), 8);
    EXPECT_EQ(typeBytes(Type::PtrInt, 32), 4);
    EXPECT_EQ(typeBytes(Type::V128, 64), 16);
}

TEST(Ir, CondHelpers)
{
    EXPECT_EQ(negateCond(Cond::Lt), Cond::Ge);
    EXPECT_EQ(negateCond(Cond::Ult), Cond::Uge);
    EXPECT_TRUE(evalCond(Cond::Ult, -1, 1) == false);
    EXPECT_TRUE(evalCond(Cond::Lt, -1, 1));
}

} // namespace
} // namespace cisa
