/**
 * @file
 * Fault-injection and multi-process tests of the durable DSE slab
 * store. Every truncation point and every single-bit flip of a saved
 * store must load cleanly — no crash, no unbounded allocation, no
 * silently accepted torn cell — with intact records salvaged
 * record-by-record. Concurrent forked writers against one store must
 * all survive and merge, and unrecognizable files must be
 * quarantined (renamed *.corrupt) with a classified reason.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

// Must run before any Campaign::get() in this process: the campaign
// tests below bind the singleton to a private store with a reduced
// budget, and stale files from a previous run must not leak in.
namespace
{
constexpr const char *kCampCache = "/tmp/cisa_slabstore_camp.bin";
struct EnvSetup
{
    EnvSetup()
    {
        setenv("CISA_SIM_UOPS", "1500", 1);
        setenv("CISA_SIM_WARMUP", "400", 1);
        setenv("CISA_DSE_CACHE", kCampCache, 1);
        setenv("CISA_SEARCH_RESTARTS", "1", 1);
        std::remove(kCampCache);
        std::remove((std::string(kCampCache) + ".corrupt").c_str());
    }
} env_setup;
} // namespace

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hh"
#include "common/faultinject.hh"
#include "common/logging.hh"
#include "explore/campaign.hh"
#include "explore/slabstore.hh"

namespace cisa
{
namespace
{

constexpr uint64_t kKey = 0x5EEDF00Dabcdef01ULL;
constexpr uint32_t kPhases = 7;
constexpr uint32_t kVals = 12;
constexpr int kSlabCount = 8;
constexpr size_t kRecBytes = SlabStore::kHeaderBytes + 4 * kVals +
                             SlabStore::kChecksumBytes; // 84

std::string
tmpPath(const std::string &name)
{
    return "/tmp/cisa_slabstore_" + name + "_" +
           std::to_string(::getpid());
}

SlabStore
mkStore(const std::string &path, bool readonly = false,
        uint64_t key = kKey)
{
    return SlabStore(path, key, kPhases, kVals, kSlabCount, readonly);
}

std::vector<float>
valsFor(int slab, int iter)
{
    std::vector<float> v(kVals);
    for (uint32_t i = 0; i < kVals; i++)
        v[i] = float(slab * 1000 + iter * 37 + int(i)) * 0.5f;
    return v;
}

void
writeFile(const std::string &path, const std::vector<uint8_t> &b)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char *>(b.data()),
            std::streamsize(b.size()));
}

size_t
fileSize(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0 ? size_t(st.st_size) : 0;
}

bool
fileExists(const std::string &path)
{
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
}

void
cleanup(const std::string &path)
{
    std::remove(path.c_str());
    std::remove((path + ".corrupt").c_str());
}

/** A store image with one record per slab 0..3 (iteration 0). */
std::vector<uint8_t>
fourSlabImage()
{
    std::vector<uint8_t> img;
    for (int s = 0; s < 4; s++) {
        std::vector<float> v = valsFor(s, 0);
        std::vector<uint8_t> rec = SlabStore::encodeRecord(
            kKey, kPhases, uint32_t(s), v.data(), v.size());
        img.insert(img.end(), rec.begin(), rec.end());
    }
    return img;
}

struct QuietLogs
{
    QuietLogs() { setLogLevel(LogLevel::Error); }
    ~QuietLogs() { setLogLevel(LogLevel::Info); }
};

TEST(SlabStore, RoundTripLastWins)
{
    QuietLogs q;
    std::string path = tmpPath("roundtrip");
    cleanup(path);
    {
        SlabStore w = mkStore(path);
        for (int s = 0; s < 4; s++) {
            std::vector<float> v = valsFor(s, 0);
            ASSERT_TRUE(w.append(s, v.data(), v.size()));
        }
        std::vector<float> v1 = valsFor(1, 1);
        ASSERT_TRUE(w.append(1, v1.data(), v1.size())); // supersedes
        EXPECT_EQ(w.health().appended, 5u);
        EXPECT_EQ(w.health().appendedBytes, 5 * kRecBytes);
    }
    SlabStore r = mkStore(path);
    std::vector<SlabRec> recs = r.poll();
    ASSERT_EQ(recs.size(), 4u);
    for (const SlabRec &rec : recs) {
        int iter = rec.slab == 1 ? 1 : 0;
        EXPECT_EQ(rec.vals, valsFor(rec.slab, iter)) << rec.slab;
    }
    EXPECT_EQ(r.health().loaded, 5u);
    EXPECT_EQ(r.health().salvaged, 0u);
    EXPECT_EQ(r.health().fileBytes, 5 * kRecBytes);
    // Unchanged file: the next poll is a cheap no-op.
    EXPECT_TRUE(r.poll().empty());
    EXPECT_EQ(r.health().loaded, 5u);
    cleanup(path);
}

TEST(SlabStore, EveryTruncationSalvagesCleanly)
{
    QuietLogs q;
    std::string path = tmpPath("trunc");
    std::vector<uint8_t> img = fourSlabImage();
    ASSERT_EQ(img.size(), 4 * kRecBytes);
    for (size_t cut = 0; cut <= img.size(); cut++) {
        cleanup(path);
        writeFile(path,
                  std::vector<uint8_t>(img.begin(),
                                       img.begin() + long(cut)));
        SlabStore r = mkStore(path);
        std::vector<SlabRec> recs = r.poll();
        size_t complete = cut / kRecBytes;
        ASSERT_EQ(recs.size(), complete) << "cut at " << cut;
        for (const SlabRec &rec : recs)
            EXPECT_EQ(rec.vals, valsFor(rec.slab, 0)) << cut;
        bool torn = cut % kRecBytes != 0;
        EXPECT_EQ(r.health().salvaged, torn ? 1u : 0u) << cut;
        if (cut > 0 && complete == 0) {
            // Nothing salvageable: the file is moved aside, never
            // silently truncated by the next writer.
            EXPECT_EQ(r.health().quarantined, 1u) << cut;
            EXPECT_FALSE(fileExists(path)) << cut;
            EXPECT_TRUE(fileExists(path + ".corrupt")) << cut;
        } else {
            EXPECT_EQ(r.health().quarantined, 0u) << cut;
        }
    }
    cleanup(path);
}

TEST(SlabStore, EverySingleBitFlipIsDetected)
{
    QuietLogs q;
    std::string path = tmpPath("flip");
    std::vector<uint8_t> img = fourSlabImage();
    for (size_t off = 0; off < img.size(); off++) {
        for (int bit = 0; bit < 8; bit++) {
            cleanup(path);
            std::vector<uint8_t> bad = img;
            bad[off] = uint8_t(bad[off] ^ (1u << bit));
            writeFile(path, bad);
            SlabStore r = mkStore(path);
            std::vector<SlabRec> recs = r.poll();
            // Exactly the one damaged record is dropped; the rest
            // must be byte-identical to what was written.
            ASSERT_EQ(recs.size(), 3u)
                << "offset " << off << " bit " << bit;
            for (const SlabRec &rec : recs) {
                ASSERT_GE(rec.slab, 0);
                ASSERT_LT(rec.slab, 4);
                EXPECT_EQ(rec.vals, valsFor(rec.slab, 0))
                    << "offset " << off << " bit " << bit;
            }
            EXPECT_GE(r.health().salvaged, 1u);
            EXPECT_FALSE(fileExists(path + ".corrupt"));
        }
    }
    cleanup(path);
}

TEST(SlabStore, HugeClaimedLengthRejectedWithoutAllocation)
{
    QuietLogs q;
    std::string path = tmpPath("huge");
    cleanup(path);
    std::vector<float> v = valsFor(0, 0);
    std::vector<uint8_t> rec = SlabStore::encodeRecord(
        kKey, kPhases, 0, v.data(), v.size());
    // Claim 2^32-1 values in an 84-byte record: the parser must
    // clamp to the bytes present, not allocate 16 GiB.
    uint32_t huge = 0xFFFFFFFFu;
    std::memcpy(rec.data() + 24, &huge, sizeof(huge));
    writeFile(path, rec);
    SlabStore r = mkStore(path);
    EXPECT_TRUE(r.poll().empty());
    EXPECT_GE(r.health().salvaged, 1u);
    cleanup(path);
}

TEST(SlabStore, QuarantineReasonClassification)
{
    QuietLogs q;
    std::string path = tmpPath("reason");
    std::vector<float> v = valsFor(0, 0);

    // Garbage: not even a record magic.
    cleanup(path);
    writeFile(path, std::vector<uint8_t>(64, 0x42));
    {
        SlabStore r = mkStore(path);
        EXPECT_TRUE(r.poll().empty());
        EXPECT_EQ(r.health().quarantined, 1u);
        EXPECT_NE(r.lastQuarantineReason().find("magic"),
                  std::string::npos);
        EXPECT_TRUE(fileExists(path + ".corrupt"));
    }

    // Legacy whole-table cache header (pre-slab-store format).
    cleanup(path);
    {
        std::vector<uint8_t> legacy(32, 0);
        uint32_t magic = 0xC15AD5E1u;
        std::memcpy(legacy.data(), &magic, sizeof(magic));
        writeFile(path, legacy);
        SlabStore r = mkStore(path);
        EXPECT_TRUE(r.poll().empty());
        EXPECT_NE(r.lastQuarantineReason().find("legacy"),
                  std::string::npos);
    }

    // Intact frame, wrong record version.
    cleanup(path);
    writeFile(path,
              SlabStore::encodeRecord(kKey, kPhases, 0, v.data(),
                                      v.size(),
                                      SlabStore::kRecVersion + 1));
    {
        SlabStore r = mkStore(path);
        EXPECT_TRUE(r.poll().empty());
        EXPECT_NE(r.lastQuarantineReason().find("version"),
                  std::string::npos);
    }

    // Intact frame, foreign simulation budget.
    cleanup(path);
    writeFile(path, SlabStore::encodeRecord(kKey + 1, kPhases, 0,
                                            v.data(), v.size()));
    {
        SlabStore r = mkStore(path);
        EXPECT_TRUE(r.poll().empty());
        EXPECT_NE(r.lastQuarantineReason().find("budget"),
                  std::string::npos);
    }

    // Valid magic but damaged payload: checksum mismatch.
    cleanup(path);
    {
        std::vector<uint8_t> rec = SlabStore::encodeRecord(
            kKey, kPhases, 0, v.data(), v.size());
        rec[SlabStore::kHeaderBytes] ^= 0xFF;
        writeFile(path, rec);
        SlabStore r = mkStore(path);
        EXPECT_TRUE(r.poll().empty());
        EXPECT_NE(r.lastQuarantineReason().find("checksum"),
                  std::string::npos);
    }
    cleanup(path);
}

TEST(SlabStore, MixedBudgetsShareOneFile)
{
    QuietLogs q;
    std::string path = tmpPath("mixed");
    cleanup(path);
    std::vector<float> ours = valsFor(2, 0);
    std::vector<float> theirs = valsFor(3, 5);
    {
        SlabStore a = mkStore(path);
        ASSERT_TRUE(a.append(2, ours.data(), ours.size()));
        SlabStore b = mkStore(path, false, kKey + 7);
        ASSERT_TRUE(b.append(3, theirs.data(), theirs.size()));
    }
    // Each budget sees exactly its own record; the other's is
    // counted stale but stays on disk — no quarantine.
    {
        SlabStore r = mkStore(path);
        std::vector<SlabRec> recs = r.poll();
        ASSERT_EQ(recs.size(), 1u);
        EXPECT_EQ(recs[0].slab, 2);
        EXPECT_EQ(recs[0].vals, ours);
        EXPECT_EQ(r.health().stale, 1u);
        EXPECT_EQ(r.health().quarantined, 0u);
    }
    {
        SlabStore r = mkStore(path, false, kKey + 7);
        std::vector<SlabRec> recs = r.poll();
        ASSERT_EQ(recs.size(), 1u);
        EXPECT_EQ(recs[0].slab, 3);
        EXPECT_EQ(recs[0].vals, theirs);
    }
    EXPECT_EQ(fileSize(path), 2 * kRecBytes);
    cleanup(path);
}

TEST(SlabStore, ReadonlyNeverTouchesDisk)
{
    QuietLogs q;
    std::string path = tmpPath("readonly");
    cleanup(path);
    writeFile(path, std::vector<uint8_t>(64, 0x42)); // garbage
    SlabStore r = mkStore(path, true);
    EXPECT_TRUE(r.poll().empty());
    // Rejected, but read-only: the file is left exactly in place.
    EXPECT_EQ(r.health().quarantined, 0u);
    EXPECT_TRUE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".corrupt"));
    // Appends are accepted as no-ops.
    std::vector<float> v = valsFor(0, 0);
    EXPECT_TRUE(r.append(0, v.data(), v.size()));
    EXPECT_EQ(r.health().appended, 0u);
    EXPECT_EQ(fileSize(path), 64u);
    cleanup(path);
}

TEST(SlabStore, CompactionReclaimsSupersededRecords)
{
    QuietLogs q;
    std::string path = tmpPath("compact");
    cleanup(path);
    {
        SlabStore w = mkStore(path);
        for (int i = 0; i < 100; i++) {
            std::vector<float> v = valsFor(0, i);
            ASSERT_TRUE(w.append(0, v.data(), v.size()));
        }
    }
    ASSERT_EQ(fileSize(path), 100 * kRecBytes);
    SlabStore r = mkStore(path);
    std::vector<SlabRec> recs = r.poll();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].vals, valsFor(0, 99));
    // 99 dead records dominate the file: compaction rewrote it via
    // temp + fsync + atomic rename down to the one live record.
    EXPECT_EQ(fileSize(path), kRecBytes);
    // The compacted store still parses to the same contents.
    SlabStore r2 = mkStore(path);
    std::vector<SlabRec> recs2 = r2.poll();
    ASSERT_EQ(recs2.size(), 1u);
    EXPECT_EQ(recs2[0].vals, valsFor(0, 99));
    cleanup(path);
}

TEST(SlabStore, ConcurrentForkedWritersAllSurvive)
{
    QuietLogs q;
    std::string path = tmpPath("fork");
    cleanup(path);
    constexpr int kProcs = 4;
    constexpr int kIters = 25;
    std::vector<pid_t> kids;
    for (int c = 0; c < kProcs; c++) {
        pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            // Child: no gtest, no exit handlers — signal via code.
            SlabStore s = mkStore(path);
            bool ok = true;
            for (int i = 0; i < kIters; i++) {
                std::vector<float> v = valsFor(c, i);
                ok = ok && s.append(c, v.data(), v.size());
            }
            _exit(ok ? 0 : 1);
        }
        kids.push_back(pid);
    }
    for (pid_t pid : kids) {
        int st = 0;
        ASSERT_EQ(waitpid(pid, &st, 0), pid);
        EXPECT_TRUE(WIFEXITED(st) && WEXITSTATUS(st) == 0);
    }
    // Nothing torn, nothing lost: every writer's final record is
    // present and byte-identical to what it appended.
    SlabStore r = mkStore(path);
    std::vector<SlabRec> recs = r.poll();
    ASSERT_EQ(recs.size(), size_t(kProcs));
    for (const SlabRec &rec : recs)
        EXPECT_EQ(rec.vals, valsFor(rec.slab, kIters - 1));
    EXPECT_EQ(r.health().salvaged, 0u);
    EXPECT_EQ(r.health().quarantined, 0u);
    // The merged file holds whole records only (compaction may have
    // dropped superseded ones, never torn bytes).
    EXPECT_EQ(fileSize(path) % kRecBytes, 0u);
    cleanup(path);
}

TEST(SlabStore, AppendAfterTornTailKeepsBothSides)
{
    QuietLogs q;
    std::string path = tmpPath("tornappend");
    cleanup(path);
    std::vector<uint8_t> img = fourSlabImage();
    // Simulate a crash mid-append: half a record at the tail.
    img.resize(3 * kRecBytes + kRecBytes / 2);
    writeFile(path, img);
    SlabStore w = mkStore(path);
    std::vector<float> v = valsFor(5, 9);
    ASSERT_TRUE(w.append(5, v.data(), v.size()));
    SlabStore r = mkStore(path);
    std::vector<SlabRec> recs = r.poll();
    ASSERT_EQ(recs.size(), 4u); // slabs 0,1,2 + the new 5
    for (const SlabRec &rec : recs) {
        EXPECT_EQ(rec.vals,
                  rec.slab == 5 ? v : valsFor(rec.slab, 0));
    }
    EXPECT_GE(r.health().salvaged, 1u);
    cleanup(path);
}

// ---------------------------------------------------------------
// Injected disk faults: the same salvage/quarantine guarantees, but
// with the tearing produced by the live fault plane
// (src/common/faultinject.hh) inside the real write path instead of
// by hand-truncated files.
// ---------------------------------------------------------------

/** Disarms the fault plane however the test exits. */
struct FaultGuard
{
    ~FaultGuard() { faultConfigure(""); }
};

TEST(SlabStoreFaults, InjectedShortWriteTearsAppendAndIsSalvaged)
{
    QuietLogs q;
    FaultGuard fg;
    std::string path = tmpPath("fault_shortwrite");
    cleanup(path);
    {
        SlabStore w = mkStore(path);
        for (int s = 0; s < 2; s++) {
            std::vector<float> v = valsFor(s, 0);
            ASSERT_TRUE(w.append(s, v.data(), v.size()));
        }
        // The next disk write tears mid-record and fails ENOSPC.
        ASSERT_TRUE(faultConfigure("disk.write:nth=1"));
        std::vector<float> v2 = valsFor(2, 0);
        errno = 0;
        EXPECT_FALSE(w.append(2, v2.data(), v2.size()));
        EXPECT_EQ(errno, ENOSPC);
        ASSERT_TRUE(faultConfigure(""));
    }
    // Half a record really is on disk — and must never be served.
    EXPECT_EQ(fileSize(path), 2 * kRecBytes + kRecBytes / 2);
    SlabStore r = mkStore(path);
    std::vector<SlabRec> recs = r.poll();
    ASSERT_EQ(recs.size(), 2u);
    for (const SlabRec &rec : recs) {
        EXPECT_LT(rec.slab, 2);
        EXPECT_EQ(rec.vals, valsFor(rec.slab, 0));
    }
    EXPECT_GE(r.health().salvaged, 1u);
    EXPECT_EQ(r.health().quarantined, 0u);
    // The next append must supersede the torn tail cleanly.
    std::vector<float> v2 = valsFor(2, 1);
    ASSERT_TRUE(r.append(2, v2.data(), v2.size()));
    SlabStore r2 = mkStore(path);
    recs = r2.poll();
    ASSERT_EQ(recs.size(), 3u);
    cleanup(path);
}

TEST(SlabStoreFaults, CleanEnospcWritesNothingAndFailsLoudly)
{
    QuietLogs q;
    FaultGuard fg;
    std::string path = tmpPath("fault_enospc");
    cleanup(path);
    SlabStore w = mkStore(path);
    std::vector<float> v = valsFor(0, 0);
    ASSERT_TRUE(w.append(0, v.data(), v.size()));
    // short=0: the fired write fails before writing any byte.
    ASSERT_TRUE(faultConfigure("disk.write:nth=1,short=0"));
    std::vector<float> v1 = valsFor(1, 0);
    EXPECT_FALSE(w.append(1, v1.data(), v1.size()));
    ASSERT_TRUE(faultConfigure(""));
    EXPECT_EQ(fileSize(path), kRecBytes); // untouched
    SlabStore r = mkStore(path);
    std::vector<SlabRec> recs = r.poll();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].vals, valsFor(0, 0));
    EXPECT_EQ(r.health().salvaged, 0u);
    cleanup(path);
}

TEST(SlabStoreFaults, FailedFsyncIsReportedButBytesSurvive)
{
    QuietLogs q;
    FaultGuard fg;
    std::string path = tmpPath("fault_fsync");
    cleanup(path);
    SlabStore w = mkStore(path);
    ASSERT_TRUE(faultConfigure("disk.fsync:nth=1"));
    std::vector<float> v = valsFor(0, 0);
    // Durability can't be promised, so append must report failure —
    // but the record bytes were fully written and a reload serves
    // them (the record is intact, just not guaranteed durable).
    EXPECT_FALSE(w.append(0, v.data(), v.size()));
    ASSERT_TRUE(faultConfigure(""));
    EXPECT_EQ(fileSize(path), size_t(kRecBytes));
    SlabStore r = mkStore(path);
    std::vector<SlabRec> recs = r.poll();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].vals, valsFor(0, 0));
    cleanup(path);
}

TEST(SlabStoreFaults, FailedRenameMidCompactionKeepsOriginal)
{
    QuietLogs q;
    FaultGuard fg;
    std::string path = tmpPath("fault_rename");
    cleanup(path);
    // Enough superseded records that poll() wants to compact
    // (waste >= 4096 and >= half the file).
    {
        SlabStore w = mkStore(path);
        for (int iter = 0; iter < 100; iter++) {
            std::vector<float> v = valsFor(0, iter);
            ASSERT_TRUE(w.append(0, v.data(), v.size()));
        }
    }
    size_t fullSize = fileSize(path);
    ASSERT_EQ(fullSize, 100 * kRecBytes);
    {
        // Compaction writes the tmp file, then its rename fails:
        // the original must survive byte-for-byte.
        ASSERT_TRUE(faultConfigure("disk.rename:nth=1"));
        SlabStore r = mkStore(path);
        std::vector<SlabRec> recs = r.poll();
        ASSERT_TRUE(faultConfigure(""));
        ASSERT_EQ(recs.size(), 1u);
        EXPECT_EQ(recs[0].vals, valsFor(0, 99));
        EXPECT_EQ(fileSize(path), fullSize);
        // No tmp litter either.
        EXPECT_FALSE(fileExists(path + ".tmp." +
                                std::to_string(::getpid())));
    }
    // With the fault gone the same store compacts down to one
    // record, still serving the same (latest) values.
    SlabStore r2 = mkStore(path);
    std::vector<SlabRec> recs = r2.poll();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].vals, valsFor(0, 99));
    EXPECT_EQ(fileSize(path), size_t(kRecBytes));
    cleanup(path);
}

TEST(SlabStoreFaults, TornCompactionTmpWriteKeepsOriginal)
{
    QuietLogs q;
    FaultGuard fg;
    std::string path = tmpPath("fault_compactwrite");
    cleanup(path);
    {
        SlabStore w = mkStore(path);
        for (int iter = 0; iter < 100; iter++) {
            std::vector<float> v = valsFor(0, iter);
            ASSERT_TRUE(w.append(0, v.data(), v.size()));
        }
    }
    size_t fullSize = fileSize(path);
    {
        // The compaction's tmp-file write tears: compact must
        // abandon the tmp and leave the original alone.
        ASSERT_TRUE(faultConfigure("disk.write:nth=1"));
        SlabStore r = mkStore(path);
        std::vector<SlabRec> recs = r.poll();
        ASSERT_TRUE(faultConfigure(""));
        ASSERT_EQ(recs.size(), 1u);
        EXPECT_EQ(recs[0].vals, valsFor(0, 99));
        EXPECT_EQ(fileSize(path), fullSize);
    }
    cleanup(path);
}

// ---------------------------------------------------------------
// Campaign-level integration: the singleton adopts slabs published
// through its store (in-process stand-in for a peer process) and the
// persisted bytes are identical to a cold recomputation.
// ---------------------------------------------------------------

size_t
campaignVals()
{
    return size_t(DesignPoint::kUarchCount) * size_t(phaseCount()) *
           4;
}

uint64_t
campaignKey()
{
    return Campaign::budgetKeyFor(simUopBudget(), simWarmupUops());
}

/** Plausible (positive, bounded) sentinel cells for one full slab —
 * recognizable on read-back, harmless if another test consumes
 * them. */
std::vector<float>
sentinelSlab(int slab)
{
    std::vector<float> v(campaignVals());
    for (size_t i = 0; i < v.size(); i++)
        v[i] = 0.25f + float((i + size_t(slab) * 131) % 997) * 1e-3f;
    return v;
}

SlabStore
campStore(bool readonly = false)
{
    return SlabStore(kCampCache, campaignKey(),
                     uint32_t(phaseCount()),
                     uint32_t(campaignVals()), Campaign::kSlabs,
                     readonly);
}

TEST(CampaignStore, AdoptsPublishedSlabsWithoutRecompute)
{
    // Publish slab 3 before the singleton exists: construction must
    // adopt it from disk.
    std::vector<float> pre = sentinelSlab(3);
    ASSERT_TRUE(campStore().append(3, pre.data(), pre.size()));
    Campaign &c = Campaign::get();
    ASSERT_TRUE(c.slabReady(3));
    std::vector<PhasePerf> got = c.slabPerf(3);
    ASSERT_EQ(got.size() * sizeof(PhasePerf),
              pre.size() * sizeof(float));
    // Sentinel bytes, not simulation output: proof it adopted
    // rather than recomputed.
    EXPECT_EQ(std::memcmp(got.data(), pre.data(),
                          pre.size() * sizeof(float)),
              0);
    EXPECT_GE(c.storeHealth().loaded, 1u);

    // Publish slab 5 while the singleton is live: ensureSlab's
    // reload-before-compute must pick it up (this is the in-process
    // image of cross-process coalescing).
    std::vector<float> post = sentinelSlab(5);
    ASSERT_TRUE(campStore().append(5, post.data(), post.size()));
    EXPECT_FALSE(c.slabReady(5));
    c.ensureSlab(5);
    std::vector<PhasePerf> got5 = c.slabPerf(5);
    EXPECT_EQ(std::memcmp(got5.data(), post.data(),
                          post.size() * sizeof(float)),
              0);
}

TEST(CampaignStore, PersistedBytesMatchColdRecompute)
{
    Campaign &c = Campaign::get();
    int s = FeatureSet::x86_64().id();
    c.ensureSlab(s); // computes and appends one real slab
    std::vector<PhasePerf> table = c.slabPerf(s);

    // What a peer process would read back from the store...
    SlabStore r = campStore(true);
    std::vector<SlabRec> recs = r.poll();
    const SlabRec *rec = nullptr;
    for (const SlabRec &x : recs) {
        if (x.slab == s)
            rec = &x;
    }
    ASSERT_NE(rec, nullptr);
    ASSERT_EQ(rec->vals.size() * sizeof(float),
              table.size() * sizeof(PhasePerf));
    EXPECT_EQ(std::memcmp(rec->vals.data(), table.data(),
                          rec->vals.size() * sizeof(float)),
              0);

    // ...and what it would compute cold are the same bytes (slab
    // computation is deterministic at any CISA_THREADS; ctest pins
    // this binary to 4).
    std::vector<PhasePerf> cold = computeSlabPerf(s);
    ASSERT_EQ(cold.size(), table.size());
    EXPECT_EQ(std::memcmp(cold.data(), table.data(),
                          cold.size() * sizeof(PhasePerf)),
              0);
}

} // namespace
} // namespace cisa
