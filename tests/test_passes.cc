/**
 * @file
 * Behavioural tests of individual compiler passes through the public
 * pipeline: the five ISA axes must each show their signature effect
 * on generated code (spills vs register depth, 1:1 micro-ops on
 * microx86, fewer branches under full predication, fewer dynamic ops
 * with SIMD, wider code with REXBC registers).
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "compiler/exec.hh"
#include "compiler/interp.hh"
#include "workloads/profiles.hh"
#include "workloads/synth.hh"

namespace cisa
{
namespace
{

PhaseProfile
smallProfile(const char *bench_like, int phase = 0)
{
    int bi = benchIndex(bench_like);
    EXPECT_GE(bi, 0);
    PhaseProfile p = specSuite()[size_t(bi)].phases[size_t(phase)];
    p.targetDynOps = 15000;
    p.outerTrip = 2;
    return p;
}

DynStats
runDyn(const IrModule &m, const FeatureSet &fs,
       bool vectorize = true)
{
    CompileOptions opts;
    opts.target = fs;
    opts.enableVectorize = vectorize;
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage img = MemImage::build(ir, fs.widthBits());
    Trace tr;
    ExecResult r = executeMachine(prog, img, 1ULL << 30, &tr);
    EXPECT_FALSE(r.ranOut);
    return tr.dyn;
}

TEST(Regalloc, SpillsGrowAsDepthShrinks)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    uint64_t prev_spills = 0;
    bool first = true;
    for (int depth : {64, 32, 16, 8}) {
        FeatureSet fs = FeatureSet::make(
            Complexity::X86, depth, RegWidth::W32,
            Predication::Partial);
        CompileOptions opts;
        opts.target = fs;
        MachineProgram prog = compile(m, opts);
        uint64_t spills =
            prog.stats.spillStores + prog.stats.spillLoads;
        if (!first)
            EXPECT_GE(spills, prev_spills) << "depth " << depth;
        first = false;
        prev_spills = spills;
    }
    // hmmer at depth 8 must spill heavily; at 64 barely.
    FeatureSet deep = FeatureSet::make(Complexity::X86, 64,
                                       RegWidth::W32,
                                       Predication::Partial);
    CompileOptions opts;
    opts.target = deep;
    MachineProgram prog = compile(m, opts);
    EXPECT_LT(prog.stats.spillLoads, 60u);
}

TEST(Isel, Microx86IsOneToOne)
{
    IrModule m = buildPhase(smallProfile("bzip2"));
    for (const auto &fs : FeatureSet::enumerate()) {
        if (fs.complexity != Complexity::MicroX86)
            continue;
        CompileOptions opts;
        opts.target = fs;
        MachineProgram prog = compile(m, opts);
        EXPECT_EQ(prog.stats.uops, prog.stats.instrs) << fs.name();
    }
}

TEST(Isel, X86FoldsMemoryOperands)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    FeatureSet cisc = FeatureSet::make(Complexity::X86, 32,
                                       RegWidth::W64,
                                       Predication::Partial);
    FeatureSet risc = FeatureSet::make(Complexity::MicroX86, 32,
                                       RegWidth::W64,
                                       Predication::Partial);
    CompileOptions co;
    co.target = cisc;
    MachineProgram pc = compile(m, co);
    co.target = risc;
    MachineProgram pr = compile(m, co);
    // CISC code: fewer macro instructions, more uops per instr.
    EXPECT_LT(pc.stats.instrs, pr.stats.instrs);
    EXPECT_GT(double(pc.stats.uops) / double(pc.stats.instrs), 1.01);
}

TEST(IfConvert, ReducesDynamicBranches)
{
    IrModule m = buildPhase(smallProfile("sjeng"));
    FeatureSet part = FeatureSet::make(Complexity::X86, 32,
                                       RegWidth::W64,
                                       Predication::Partial);
    FeatureSet full = FeatureSet::make(Complexity::X86, 32,
                                       RegWidth::W64,
                                       Predication::Full);
    DynStats dp = runDyn(m, part);
    DynStats df = runDyn(m, full);
    EXPECT_LT(df.branches, dp.branches);
    EXPECT_GT(df.predicated, 0u);
    // Predication slightly inflates the instruction stream.
    EXPECT_GE(double(df.uops) * 1.25, double(dp.uops));
}

TEST(IfConvert, PredictableBranchesStay)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    FeatureSet full = FeatureSet::make(Complexity::X86, 64,
                                       RegWidth::W64,
                                       Predication::Full);
    CompileOptions opts;
    opts.target = full;
    CompileReport rep;
    compile(m, opts, &rep);
    // hmmer's single hammock is highly predictable: LLVM-style
    // profitability leaves it alone.
    EXPECT_EQ(rep.ifc.diamondsConverted, 0);
}

TEST(Vectorize, ReducesDynamicUops)
{
    IrModule m = buildPhase(smallProfile("lbm"));
    // Depth 64 isolates the SIMD effect from GPR spill pressure.
    FeatureSet simd = FeatureSet::make(Complexity::X86, 64,
                                       RegWidth::W64,
                                       Predication::Partial);
    DynStats dv = runDyn(m, simd, true);
    DynStats ds = runDyn(m, simd, false);
    uint64_t simd_uops =
        dv.uopsByClass[size_t(MicroClass::SimdAlu)] +
        dv.uopsByClass[size_t(MicroClass::SimdMul)];
    EXPECT_GT(simd_uops, 0u);
    EXPECT_LT(dv.uops, ds.uops);
}

TEST(Vectorize, ReportsLoops)
{
    IrModule m = buildPhase(smallProfile("milc"));
    CompileOptions opts;
    opts.target = FeatureSet::superset();
    CompileReport rep;
    compile(m, opts, &rep);
    EXPECT_GT(rep.vec.loopsVectorized, 0);
}

TEST(Width, RegisterPairsExpandCode)
{
    IrModule m = buildPhase(smallProfile("bzip2")); // uses I64
    FeatureSet w64 = FeatureSet::make(Complexity::X86, 32,
                                      RegWidth::W64,
                                      Predication::Partial);
    FeatureSet w32 = FeatureSet::make(Complexity::X86, 32,
                                      RegWidth::W32,
                                      Predication::Partial);
    DynStats d64 = runDyn(m, w64);
    DynStats d32 = runDyn(m, w32);
    EXPECT_GT(d32.uops, d64.uops);
}

TEST(Lvn, DeepRegisterFilesEliminateMoreRedundancy)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    CompileOptions opts;
    opts.target = FeatureSet::make(Complexity::X86, 64,
                                   RegWidth::W64,
                                   Predication::Partial);
    CompileReport deep;
    compile(m, opts, &deep);
    opts.target = FeatureSet::make(Complexity::X86, 8,
                                   RegWidth::W32,
                                   Predication::Partial);
    CompileReport shallow;
    compile(m, opts, &shallow);
    EXPECT_GT(deep.lvn.exprsEliminated,
              shallow.lvn.exprsEliminated);
    EXPECT_GT(deep.dceRemoved, 0);
}

TEST(Encode, RexbcRegistersWidenCode)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    CompileOptions opts;
    opts.target = FeatureSet::make(Complexity::X86, 64,
                                   RegWidth::W64,
                                   Predication::Partial);
    MachineProgram deep = compile(m, opts);
    opts.target = FeatureSet::make(Complexity::X86, 16,
                                   RegWidth::W64,
                                   Predication::Partial);
    MachineProgram narrow = compile(m, opts);
    double bpi_deep =
        double(deep.stats.codeBytes) / double(deep.stats.instrs);
    double bpi_narrow = double(narrow.stats.codeBytes) /
                        double(narrow.stats.instrs);
    EXPECT_GT(bpi_deep, bpi_narrow);
}

TEST(Encode, AddressesAreMonotone)
{
    IrModule m = buildPhase(smallProfile("astar"));
    CompileOptions opts;
    opts.target = FeatureSet::x86_64();
    MachineProgram prog = compile(m, opts);
    uint64_t prev = 0;
    for (const auto &f : prog.funcs) {
        for (const auto &b : f.blocks) {
            for (const auto &i : b.instrs) {
                EXPECT_GT(i.addr, prev);
                EXPECT_GT(i.len, 0);
                prev = i.addr;
            }
        }
    }
}

TEST(Trace, CarriesGenuineAddressesAndBranches)
{
    IrModule m = buildPhase(smallProfile("mcf"));
    FeatureSet fs = FeatureSet::x86_64();
    CompileOptions opts;
    opts.target = fs;
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage img = MemImage::build(ir, fs.widthBits());
    Trace tr;
    executeMachine(prog, img, 1ULL << 30, &tr);
    ASSERT_GT(tr.ops.size(), 1000u);
    uint64_t mem_ops = 0, branches = 0, taken = 0;
    for (const auto &op : tr.ops) {
        if (op.readsMem() || op.writesMem()) {
            mem_ops++;
            EXPECT_GT(op.maddr, 0u);
            EXPECT_LT(op.maddr, img.mem.size());
        }
        if (op.isBranch()) {
            branches++;
            taken += op.taken();
        }
    }
    EXPECT_GT(mem_ops, 100u);
    EXPECT_GT(branches, 100u);
    EXPECT_GT(taken, 0u);
    EXPECT_LT(taken, branches);
}

} // namespace
} // namespace cisa
