/**
 * @file
 * Behavioural tests of individual compiler passes through the public
 * pipeline: the five ISA axes must each show their signature effect
 * on generated code (spills vs register depth, 1:1 micro-ops on
 * microx86, fewer branches under full predication, fewer dynamic ops
 * with SIMD, wider code with REXBC registers).
 */

#include <gtest/gtest.h>

#include "compiler/compiler.hh"
#include "compiler/exec.hh"
#include "compiler/interp.hh"
#include "compiler/passes/dce.hh"
#include "compiler/passes/encode.hh"
#include "compiler/passes/isel.hh"
#include "compiler/passes/regalloc.hh"
#include "compiler/passes/sched.hh"
#include "workloads/profiles.hh"
#include "workloads/synth.hh"

namespace cisa
{
namespace
{

PhaseProfile
smallProfile(const char *bench_like, int phase = 0)
{
    int bi = benchIndex(bench_like);
    EXPECT_GE(bi, 0);
    PhaseProfile p = specSuite()[size_t(bi)].phases[size_t(phase)];
    p.targetDynOps = 15000;
    p.outerTrip = 2;
    return p;
}

DynStats
runDyn(const IrModule &m, const FeatureSet &fs,
       bool vectorize = true)
{
    CompileOptions opts;
    opts.target = fs;
    opts.enableVectorize = vectorize;
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage img = MemImage::build(ir, fs.widthBits());
    Trace tr;
    ExecResult r = executeMachine(prog, img, 1ULL << 30, &tr);
    EXPECT_FALSE(r.ranOut);
    return tr.dyn;
}

TEST(Regalloc, SpillsGrowAsDepthShrinks)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    uint64_t prev_spills = 0;
    bool first = true;
    for (int depth : {64, 32, 16, 8}) {
        FeatureSet fs = FeatureSet::make(
            Complexity::X86, depth, RegWidth::W32,
            Predication::Partial);
        CompileOptions opts;
        opts.target = fs;
        MachineProgram prog = compile(m, opts);
        uint64_t spills =
            prog.stats.spillStores + prog.stats.spillLoads;
        if (!first)
            EXPECT_GE(spills, prev_spills) << "depth " << depth;
        first = false;
        prev_spills = spills;
    }
    // hmmer at depth 8 must spill heavily; at 64 barely.
    FeatureSet deep = FeatureSet::make(Complexity::X86, 64,
                                       RegWidth::W32,
                                       Predication::Partial);
    CompileOptions opts;
    opts.target = deep;
    MachineProgram prog = compile(m, opts);
    EXPECT_LT(prog.stats.spillLoads, 60u);
}

TEST(Isel, Microx86IsOneToOne)
{
    IrModule m = buildPhase(smallProfile("bzip2"));
    for (const auto &fs : FeatureSet::enumerate()) {
        if (fs.complexity != Complexity::MicroX86)
            continue;
        CompileOptions opts;
        opts.target = fs;
        MachineProgram prog = compile(m, opts);
        EXPECT_EQ(prog.stats.uops, prog.stats.instrs) << fs.name();
    }
}

TEST(Isel, X86FoldsMemoryOperands)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    FeatureSet cisc = FeatureSet::make(Complexity::X86, 32,
                                       RegWidth::W64,
                                       Predication::Partial);
    FeatureSet risc = FeatureSet::make(Complexity::MicroX86, 32,
                                       RegWidth::W64,
                                       Predication::Partial);
    CompileOptions co;
    co.target = cisc;
    MachineProgram pc = compile(m, co);
    co.target = risc;
    MachineProgram pr = compile(m, co);
    // CISC code: fewer macro instructions, more uops per instr.
    EXPECT_LT(pc.stats.instrs, pr.stats.instrs);
    EXPECT_GT(double(pc.stats.uops) / double(pc.stats.instrs), 1.01);
}

TEST(IfConvert, ReducesDynamicBranches)
{
    IrModule m = buildPhase(smallProfile("sjeng"));
    FeatureSet part = FeatureSet::make(Complexity::X86, 32,
                                       RegWidth::W64,
                                       Predication::Partial);
    FeatureSet full = FeatureSet::make(Complexity::X86, 32,
                                       RegWidth::W64,
                                       Predication::Full);
    DynStats dp = runDyn(m, part);
    DynStats df = runDyn(m, full);
    EXPECT_LT(df.branches, dp.branches);
    EXPECT_GT(df.predicated, 0u);
    // Predication slightly inflates the instruction stream.
    EXPECT_GE(double(df.uops) * 1.25, double(dp.uops));
}

TEST(IfConvert, PredictableBranchesStay)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    FeatureSet full = FeatureSet::make(Complexity::X86, 64,
                                       RegWidth::W64,
                                       Predication::Full);
    CompileOptions opts;
    opts.target = full;
    CompileReport rep;
    compile(m, opts, &rep);
    // hmmer's single hammock is highly predictable: LLVM-style
    // profitability leaves it alone.
    EXPECT_EQ(rep.ifc.diamondsConverted, 0);
}

TEST(Vectorize, ReducesDynamicUops)
{
    IrModule m = buildPhase(smallProfile("lbm"));
    // Depth 64 isolates the SIMD effect from GPR spill pressure.
    FeatureSet simd = FeatureSet::make(Complexity::X86, 64,
                                       RegWidth::W64,
                                       Predication::Partial);
    DynStats dv = runDyn(m, simd, true);
    DynStats ds = runDyn(m, simd, false);
    uint64_t simd_uops =
        dv.uopsByClass[size_t(MicroClass::SimdAlu)] +
        dv.uopsByClass[size_t(MicroClass::SimdMul)];
    EXPECT_GT(simd_uops, 0u);
    EXPECT_LT(dv.uops, ds.uops);
}

TEST(Vectorize, ReportsLoops)
{
    IrModule m = buildPhase(smallProfile("milc"));
    CompileOptions opts;
    opts.target = FeatureSet::superset();
    CompileReport rep;
    compile(m, opts, &rep);
    EXPECT_GT(rep.vec.loopsVectorized, 0);
}

TEST(Width, RegisterPairsExpandCode)
{
    IrModule m = buildPhase(smallProfile("bzip2")); // uses I64
    FeatureSet w64 = FeatureSet::make(Complexity::X86, 32,
                                      RegWidth::W64,
                                      Predication::Partial);
    FeatureSet w32 = FeatureSet::make(Complexity::X86, 32,
                                      RegWidth::W32,
                                      Predication::Partial);
    DynStats d64 = runDyn(m, w64);
    DynStats d32 = runDyn(m, w32);
    EXPECT_GT(d32.uops, d64.uops);
}

TEST(Lvn, DeepRegisterFilesEliminateMoreRedundancy)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    CompileOptions opts;
    opts.target = FeatureSet::make(Complexity::X86, 64,
                                   RegWidth::W64,
                                   Predication::Partial);
    CompileReport deep;
    compile(m, opts, &deep);
    opts.target = FeatureSet::make(Complexity::X86, 8,
                                   RegWidth::W32,
                                   Predication::Partial);
    CompileReport shallow;
    compile(m, opts, &shallow);
    EXPECT_GT(deep.lvn.exprsEliminated,
              shallow.lvn.exprsEliminated);
    EXPECT_GT(deep.dceRemoved, 0);
}

TEST(Encode, RexbcRegistersWidenCode)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    CompileOptions opts;
    opts.target = FeatureSet::make(Complexity::X86, 64,
                                   RegWidth::W64,
                                   Predication::Partial);
    MachineProgram deep = compile(m, opts);
    opts.target = FeatureSet::make(Complexity::X86, 16,
                                   RegWidth::W64,
                                   Predication::Partial);
    MachineProgram narrow = compile(m, opts);
    double bpi_deep =
        double(deep.stats.codeBytes) / double(deep.stats.instrs);
    double bpi_narrow = double(narrow.stats.codeBytes) /
                        double(narrow.stats.instrs);
    EXPECT_GT(bpi_deep, bpi_narrow);
}

TEST(Encode, AddressesAreMonotone)
{
    IrModule m = buildPhase(smallProfile("astar"));
    CompileOptions opts;
    opts.target = FeatureSet::x86_64();
    MachineProgram prog = compile(m, opts);
    uint64_t prev = 0;
    for (const auto &f : prog.funcs) {
        for (const auto &b : f.blocks) {
            for (const auto &i : b.instrs) {
                EXPECT_GT(i.addr, prev);
                EXPECT_GT(i.len, 0);
                prev = i.addr;
            }
        }
    }
}

TEST(Trace, CarriesGenuineAddressesAndBranches)
{
    IrModule m = buildPhase(smallProfile("mcf"));
    FeatureSet fs = FeatureSet::x86_64();
    CompileOptions opts;
    opts.target = fs;
    IrModule ir;
    MachineProgram prog = compile(m, opts, nullptr, &ir);
    MemImage img = MemImage::build(ir, fs.widthBits());
    Trace tr;
    executeMachine(prog, img, 1ULL << 30, &tr);
    ASSERT_GT(tr.ops.size(), 1000u);
    uint64_t mem_ops = 0, branches = 0, taken = 0;
    for (const auto &op : tr.ops) {
        if (op.readsMem() || op.writesMem()) {
            mem_ops++;
            EXPECT_GT(op.maddr, 0u);
            EXPECT_LT(op.maddr, img.mem.size());
        }
        if (op.isBranch()) {
            branches++;
            taken += op.taken();
        }
    }
    EXPECT_GT(mem_ops, 100u);
    EXPECT_GT(branches, 100u);
    EXPECT_GT(taken, 0u);
    EXPECT_LT(taken, branches);
}

/**
 * The pre-PassManager compiler, reproduced by direct pass calls: the
 * fixed mid-end sequence (with DCE correctly un-nested from the LVN
 * flag) followed by the unchanged backend. This is the golden
 * reference the data-driven O1 pipeline must match byte for byte.
 */
MachineProgram
legacyCompile(const IrModule &m, const FeatureSet &t)
{
    IrModule work = m;
    for (auto &f : work.funcs) {
        runLvn(f, t.regDepth);
        runDce(f);
        if (t.simd())
            runVectorize(f);
        if (t.fullPredication()) {
            IfConvertParams p;
            p.regDepth = t.regDepth;
            runIfConvert(f, p);
        }
        runDce(f);
    }
    work.validate();

    MachineProgram prog;
    prog.name = work.name;
    prog.target = t;
    std::vector<uint64_t> bases = regionLayout(work, t.widthBits());
    for (const auto &f : work.funcs) {
        MachineFunction mf = runIsel(f, work, bases, t);
        runRegalloc(mf, t);
        runSchedule(mf);
        prog.funcs.push_back(std::move(mf));
    }
    runEncode(prog);
    return prog;
}

TEST(Pipeline, GoldenO1MatchesLegacyFixedSequence)
{
    const char *benches[] = {"hmmer", "sjeng", "milc"};
    const char *sets[] = {"x86-64D-64W-F", "x86-32D-64W-P",
                          "microx86-8D-32W-P", "x86-32D-64W-F"};
    for (const char *bench : benches) {
        IrModule m = buildPhase(smallProfile(bench));
        for (const char *fs : sets) {
            FeatureSet t = FeatureSet::parse(fs);
            MachineProgram ref = legacyCompile(m, t);
            CompileOptions opts;
            opts.target = t;
            opts.optLevel = 1;
            MachineProgram got = compile(m, opts);
            EXPECT_EQ(got.print(), ref.print())
                << bench << " @ " << fs;
            EXPECT_EQ(got.stats.codeBytes, ref.stats.codeBytes)
                << bench << " @ " << fs;
            EXPECT_EQ(got.stats.instrs, ref.stats.instrs)
                << bench << " @ " << fs;
            EXPECT_EQ(got.stats.spillStores, ref.stats.spillStores)
                << bench << " @ " << fs;
        }
    }
}

TEST(Pipeline, O2ChangesCodegenAndPreservesSemantics)
{
    // sjeng's phases call leaf functions with small counted loops,
    // giving the O2 extras (SCCP/LICM/unroll) something to chew on.
    IrModule m = buildPhase(smallProfile("sjeng"));
    FeatureSet fs = FeatureSet::parse("x86-32D-64W-P");

    CompileOptions o1;
    o1.target = fs;
    o1.optLevel = 1;
    MachineProgram p1 = compile(m, o1);

    CompileOptions o2;
    o2.target = fs;
    o2.optLevel = 2;
    CompileReport rep;
    IrModule ir2;
    MachineProgram p2 = compile(m, o2, &rep, &ir2);

    // O2 is a genuinely different design point...
    EXPECT_NE(p1.print(), p2.print());
    EXPECT_GT(rep.sccp.constsFolded + rep.licm.hoisted +
                  rep.unroll.loopsUnrolled,
              0);

    // ...that still computes the same thing: machine execution must
    // match the interpretation of the transformed IR exactly.
    MemImage i1 = MemImage::build(ir2, fs.widthBits());
    ExecResult want = interpret(ir2, i1);
    MemImage i2 = MemImage::build(ir2, fs.widthBits());
    ExecResult got = executeMachine(p2, i2);
    EXPECT_EQ(got.retVal, want.retVal);
    EXPECT_EQ(got.intChecksum, want.intChecksum);
}

TEST(Pipeline, PassStringOverrideReplacesLevel)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    CompileOptions opts;
    opts.target = FeatureSet::superset();
    opts.optLevel = 2;          // ignored: the override wins
    opts.passOverride = "dce";
    CompileReport rep;
    compile(m, opts, &rep);
    EXPECT_EQ(rep.pipeline, "dce");
    // One mid-end stage plus the four backend stages.
    ASSERT_EQ(rep.passRuns.size(), 5u);
    EXPECT_EQ(rep.passRuns[0].name, "dce");
    EXPECT_EQ(rep.passRuns[4].name, "encode");
    for (const auto &pr : rep.passRuns)
        EXPECT_GE(pr.micros, 0.0);
    EXPECT_EQ(rep.lvn.exprsEliminated, 0);
    EXPECT_EQ(rep.vec.loopsVectorized, 0);
}

TEST(Pipeline, ParseRejectsUnknownPassByName)
{
    EXPECT_EQ(PipelineSpec::parse(" lvn , dce ").str(), "lvn,dce");
    EXPECT_EQ(PipelineSpec::parse("").passes.size(), 0u);
    EXPECT_DEATH(PipelineSpec::parse("lvn,bogus"),
                 "unknown pass 'bogus'");
}

TEST(Pipeline, AnalysisCacheComputesOnceAndReuses)
{
    IrModule m = buildPhase(smallProfile("sjeng"));
    CompileOptions opts;
    opts.target = FeatureSet::parse("x86-32D-64W-P");
    opts.optLevel = 2;
    CompileReport rep;
    compile(m, opts, &rep);
    // LICM pulls CFG + dominators + loops + liveness: the dependent
    // analyses rebuild on the cached CFG rather than from scratch.
    EXPECT_GT(rep.analysesComputed, 0);
    EXPECT_GT(rep.analysesReused, 0);
}

TEST(Pipeline, VerifyModeIsTransparent)
{
    IrModule m = buildPhase(smallProfile("milc"));
    for (int level : {1, 2}) {
        CompileOptions opts;
        opts.target = FeatureSet::superset();
        opts.optLevel = level;
        MachineProgram plain = compile(m, opts);
        opts.verifyIr = true;
        MachineProgram checked = compile(m, opts);
        EXPECT_EQ(plain.print(), checked.print()) << "O" << level;
    }
}

TEST(Pipeline, OptLevelZeroSkipsMidEnd)
{
    IrModule m = buildPhase(smallProfile("hmmer"));
    CompileOptions opts;
    opts.target = FeatureSet::superset();
    opts.optLevel = 0;
    CompileReport rep;
    IrModule ir;
    MachineProgram prog = compile(m, opts, &rep, &ir);
    EXPECT_EQ(rep.pipeline, "");
    EXPECT_EQ(rep.dceRemoved, 0);
    EXPECT_EQ(rep.lvn.exprsEliminated, 0);
    // Unoptimized code still runs correctly.
    MemImage i1 = MemImage::build(ir, opts.target.widthBits());
    ExecResult want = interpret(ir, i1);
    MemImage i2 = MemImage::build(ir, opts.target.widthBits());
    ExecResult got = executeMachine(prog, i2);
    EXPECT_EQ(got.intChecksum, want.intChecksum);
}

} // namespace
} // namespace cisa
